package load

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/fleet"
	"repro/internal/fleet/coord"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/server"
	"repro/internal/transport"
)

// FleetLiveConfig parametrizes a live fleet execution: N real in-process
// server shards behind the fleet coordinator, one emulated client per
// session, migration over the reconnect/Welcome-resume path.
type FleetLiveConfig struct {
	// Live carries the per-shard engine knobs. Live.BudgetMbps is the
	// GLOBAL fleet budget; the rebalancer splits it. Live.Reconnect is
	// forced on — migration is a forced redial, so clients that cannot
	// reconnect cannot migrate. Server stall/slow-ACK chaos faults apply
	// to every shard (the injector is shared and thread-safe).
	Live LiveConfig
	// Shards is the shard count (default 3).
	Shards int
	// Zones is the locality-zone count, as in FleetSimConfig (default
	// Shards).
	Zones int
	// Scorer names the placement policy (fleet.ScorerByName).
	Scorer string
	// Rebalance tunes the periodic budget re-split driven by the slot
	// clock.
	Rebalance fleet.RebalanceConfig
	// Recorder captures placement decisions; nil disables.
	Recorder *obs.PlacementRecorder
	// Health, when non-nil, receives the coordinator's per-shard and
	// fleet-aggregate series each tick (same store the shards' sampler
	// should write to, so /debug/health serves one document).
	Health *tsdb.Store
	// Sampler, when non-nil, runs one registry/SLO sampling pass per slot
	// on the coordinator's clock. Point it at the same store as Health.
	Sampler *tsdb.Sampler
	// Evac turns on the SLO-pressure evacuation loop on the live
	// coordinator (see fleet.EvacConfig).
	Evac fleet.EvacConfig
	// Coordinators is the coordinator replica count (default 1 — the
	// zero-cost single-replica path); see fleet.LiveConfig.Coordinators.
	// The chaos profile's coord_kill/coord_partition faults drive the
	// replicas on the live slot clock.
	Coordinators int
	// Coord tunes the replicated coordinator (lease length, snapshot
	// cadence); Coordinators overrides Coord.Replicas.
	Coord coord.Config
	// CoordDebug, when non-nil, receives the live fleet's coordinator
	// status producer as soon as the shards come up — the /debug/coord
	// hook. The producer is mutex-guarded and stays valid for the life of
	// the process, so an HTTP handler may call it mid-run.
	CoordDebug func(status func() coord.Status)
}

// RunLiveFleet executes the workload against a live shard fleet over
// loopback sockets. Arrivals are placed by the scorer, the coordinator
// ticks the rebalancer on the real slot clock, and the chaos profile's
// shard_kill/shard_drain faults kill or drain real servers mid-run — their
// sessions migrate to the survivors through the Welcome-resume path
// instead of being dropped.
func RunLiveFleet(w *Workload, cfg FleetLiveConfig) (*FleetReport, error) {
	if len(w.Sessions) == 0 {
		return nil, fmt.Errorf("load: empty workload")
	}
	sps := w.Cfg.SlotsPerSecond
	if sps <= 0 {
		sps = 60
	}
	cfg.Live = cfg.Live.withDefaults(sps)
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.Zones <= 0 {
		cfg.Zones = cfg.Shards
	}
	if m := cfg.Live.Chaos.MaxShard(); m >= cfg.Shards {
		return nil, fmt.Errorf("load: chaos profile targets shard %d but the fleet has %d shards", m, cfg.Shards)
	}
	if cfg.Coordinators <= 0 {
		cfg.Coordinators = 1
	}
	if m := cfg.Live.Chaos.MaxReplica(); m >= cfg.Coordinators {
		return nil, fmt.Errorf("load: chaos profile targets coordinator replica %d but the cluster has %d", m, cfg.Coordinators)
	}
	scorer, err := fleet.ScorerByName(cfg.Scorer)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	lm := newLoadMetrics(cfg.Live.Metrics)

	// Per-session shaping, session-keyed so it follows the session across
	// shards (every shard shares the lookup).
	nets := make(map[uint32]*sessionNet, len(w.Sessions))
	if !cfg.Live.Unshaped {
		for _, spec := range w.Sessions {
			caps := w.CapSlots(spec)
			n := &sessionNet{
				bucket: netem.NewTokenBucket(caps[0], 16<<10, start),
				caps:   caps,
			}
			if cfg.Live.LossProb > 0 {
				n.loss = netem.NewLossModel(cfg.Live.LossProb, w.Cfg.Seed+int64(spec.ID)*131)
			}
			n.inj = chaos.NewInjector(cfg.Live.Chaos, spec.ID)
			nets[spec.ID] = n
		}
	}

	base := server.DefaultConfig(nil) // per-shard allocators via NewAllocator
	base.Params = cfg.Live.Params
	base.SlotDuration = cfg.Live.SlotDuration
	base.TotalSlots = w.Cfg.HorizonSlots
	base.MaxSessions = cfg.Live.MaxSessions
	base.Metrics = cfg.Live.Metrics
	base.Recorder = cfg.Live.Recorder
	base.Tracer = cfg.Live.Tracer
	base.TraceEpoch = cfg.Live.TraceEpoch
	base.SLO = cfg.Live.SLO
	base.Breaker = cfg.Live.Breaker
	base.RetryPolicy = cfg.Live.RetryPolicy
	base.Chaos = chaos.NewServerInjector(cfg.Live.Chaos)
	base.Logf = cfg.Live.Logf
	if !cfg.Live.Unshaped {
		base.ShaperFor = func(user uint32) transport.Shaper {
			if n, ok := nets[user]; ok {
				return n
			}
			return nil
		}
	}

	live, err := fleet.NewLive(fleet.LiveConfig{
		Shards:           cfg.Shards,
		Base:             base,
		GlobalBudgetMbps: cfg.Live.BudgetMbps,
		NewAllocator:     cfg.Live.NewAllocator,
		Zones:            cfg.Zones,
		Scorer:           scorer,
		Recorder:         cfg.Recorder,
		Rebalance:        cfg.Rebalance,
		Health:           cfg.Health,
		Evac:             cfg.Evac,
		Coordinators:     cfg.Coordinators,
		Coord:            cfg.Coord,
	})
	if err != nil {
		return nil, err
	}
	if cfg.CoordDebug != nil {
		cfg.CoordDebug(live.CoordStatus)
	}

	report := &FleetReport{
		RunReport: RunReport{
			Mode:         "fleet-live",
			Algorithm:    cfg.Live.AllocName,
			HorizonSlots: w.Cfg.HorizonSlots,
			Spawned:      len(w.Sessions),
		},
		Scorer: scorer.Name(),
	}
	qoeParams := metrics.QoEParams{Alpha: cfg.Live.Params.Alpha, Beta: cfg.Live.Params.Beta}

	var (
		mu     sync.Mutex
		wg     sync.WaitGroup
		active int
	)
	noteEnd := func(res *client.Result, err error) {
		defer wg.Done()
		mu.Lock()
		defer mu.Unlock()
		active--
		lm.active.Add(-1)
		if err != nil || res == nil || res.Slots == 0 {
			report.Failed++
			lm.failed.Inc()
			return
		}
		out := SessionOutcome{
			ID:       res.User,
			Slots:    res.Slots,
			QoE:      res.Report.QoE,
			Quality:  res.Report.Quality,
			DelayMs:  res.Report.Delay,
			Variance: res.Report.Variance,
			Coverage: res.Report.Coverage,
			MissFrac: 1 - res.Report.FPSFrac,
			SetupMs:  res.SetupMs,
		}
		report.Outcomes = append(report.Outcomes, out)
		report.Completed++
		lm.completed.Inc()
		lm.observeOutcome(out)
	}

	launch := func(spec SessionSpec) {
		shard, err := live.Place(fleet.SessionInfo{
			ID:         spec.ID,
			Zone:       int(spec.ID) % cfg.Zones,
			DemandMbps: base.InitialUserMbps,
		})
		if err != nil {
			mu.Lock()
			report.Failed++
			report.PlacementsFailed++
			mu.Unlock()
			lm.failed.Inc()
			cfg.Live.Logf("loadgen: session %d: %v", spec.ID, err)
			return
		}
		mu.Lock()
		active++
		if active > report.PeakConcurrent {
			report.PeakConcurrent = active
		}
		mu.Unlock()
		lm.active.Add(1)
		lm.spawned.Inc()
		wg.Add(1)
		go func() {
			trace := w.MotionTrace(spec, 64)
			ccfg := client.DefaultConfig(spec.ID, live.ShardAddr(shard), trace)
			ccfg.SlotDuration = cfg.Live.SlotDuration
			ccfg.Params = qoeParams
			ccfg.Slots = spec.Slots()
			ccfg.Metrics = cfg.Live.Metrics
			ccfg.Tracer = cfg.Live.Tracer
			// Migration is a forced redial: reconnect is not optional in a
			// fleet, and the Redirect hook tracks the owning shard.
			ccfg.Reconnect = true
			ccfg.Redirect = func() string { return live.Addr(spec.ID) }
			res, err := client.Run(ccfg)
			if err != nil {
				cfg.Live.Logf("loadgen: session %d: %v", spec.ID, err)
			}
			live.Forget(spec.ID)
			noteEnd(res, err)
		}()
	}

	// Shard and coordinator fault schedules, applied on the coordinator's
	// slot clock.
	shardFaults := cfg.Live.Chaos.ShardFaults()
	coordFaults := cfg.Live.Chaos.CoordFaults()
	killSlot := make(map[int]int)
	drainSlot := make(map[int]int)
	coordLeaderless := 0

	ticker := time.NewTicker(cfg.Live.SlotDuration)
	next := 0
	for slot := 0; slot < w.Cfg.HorizonSlots; slot++ {
		now := <-ticker.C
		// Coordinator faults land before this slot's placements and ticks,
		// like the virtual-time engine: a leader killed here is already
		// dead when the fleet proposes.
		for _, f := range coordFaults {
			switch f.Kind {
			case chaos.FaultCoordKill:
				if f.StartSlot == slot {
					live.CoordKill(f.Replica)
					cfg.Live.Logf("loadgen: chaos killed coordinator replica %d at slot %d", f.Replica, slot)
				}
				if f.DurationSlots > 0 && f.StartSlot+f.DurationSlots == slot {
					live.CoordRestart(f.Replica)
					cfg.Live.Logf("loadgen: coordinator replica %d restarted at slot %d", f.Replica, slot)
				}
			case chaos.FaultCoordPartition:
				if f.StartSlot == slot {
					live.CoordPartition(f.Replica, slot+f.DurationSlots)
					cfg.Live.Logf("loadgen: chaos partitioned coordinator replica %d until slot %d", f.Replica, slot+f.DurationSlots)
				}
			}
		}
		for next < len(w.Sessions) && w.Sessions[next].ArriveSlot <= slot {
			launch(w.Sessions[next])
			next++
		}
		for _, f := range shardFaults {
			if f.StartSlot != slot {
				continue
			}
			switch f.Kind {
			case chaos.FaultShardKill:
				if _, done := killSlot[f.Shard]; !done {
					killSlot[f.Shard] = slot
					replaced := live.KillShard(f.Shard)
					cfg.Live.Logf("loadgen: chaos killed shard %d at slot %d (%d sessions re-placed)", f.Shard, slot, replaced)
				}
			case chaos.FaultShardDrain:
				if _, done := drainSlot[f.Shard]; !done {
					drainSlot[f.Shard] = slot
					moved, err := live.DrainShard(f.Shard)
					cfg.Live.Logf("loadgen: chaos drained shard %d at slot %d (%d migrated, err=%v)", f.Shard, slot, moved, err)
				}
			}
		}
		if !cfg.Live.Unshaped {
			for _, spec := range w.Sessions[:next] {
				local := slot - spec.ArriveSlot
				n := nets[spec.ID]
				if local < 0 || local >= len(n.caps) {
					continue
				}
				n.inj.Advance(slot)
				rate := n.caps[local] * n.inj.CapFactor()
				if rate != n.bucket.Rate() {
					n.bucket.SetRate(rate, now)
				}
			}
		}
		live.Tick(slot)
		if cfg.Coordinators > 1 && !live.CoordStatus().Available {
			coordLeaderless++
		}
		// Registry/SLO sampling rides the coordinator's clock so the
		// stored series share the fleet series' slot axis.
		cfg.Sampler.Sample(int64(slot))
	}
	ticker.Stop()

	if cfg.Live.DrainTimeout > 0 {
		if !live.Drain(cfg.Live.DrainTimeout) {
			cfg.Live.Logf("loadgen: fleet drain timed out with unflushed sessions")
		}
	}
	if err := live.Close(); err != nil {
		cfg.Live.Logf("loadgen: fleet close: %v", err)
	}
	wg.Wait()
	report.WallSec = time.Since(start).Seconds()
	sortOutcomes(report.Outcomes)
	if h := cfg.Live.Metrics.Histogram("collabvr_server_slot_decision_ms", obs.DefaultLatencyBuckets()); h.Count() > 0 {
		report.SlotDecisionP50Ms = h.Quantile(0.50)
		report.SlotDecisionP99Ms = h.Quantile(0.99)
	}

	// Fold the coordinator's view into the report.
	snap := live.Snapshot(0)
	for _, s := range snap.Shards {
		out := ShardOutcome{
			Shard: s.Shard, Zone: s.Zone,
			Placed: s.Placed, MigratedIn: s.MigratedIn, MigratedOut: s.MigratedOut,
			KilledSlot: -1, DrainSlot: -1,
			FinalBudgetMbps: s.BudgetMbps,
		}
		if slot, ok := killSlot[s.Shard]; ok {
			out.KilledSlot = slot
			out.FinalBudgetMbps = 0
		}
		if slot, ok := drainSlot[s.Shard]; ok {
			out.DrainSlot = slot
		}
		report.Shards = append(report.Shards, out)
	}
	report.Placements = int(snap.Placements)
	report.Migrations = int(snap.Migrations)
	report.Rebalances = int(snap.Rebalances)
	report.Evacuations = snap.Evacuations
	report.EvacBatches = live.EvacBatches()
	cst := live.CoordStatus()
	report.Coord = &CoordOutcome{
		Replicas:         cst.Replicas,
		Term:             cst.Term,
		Elections:        cst.Elections,
		Commits:          cst.Commits,
		Rejected:         cst.Rejected,
		SnapshotInstalls: cst.SnapshotInstalls,
		LeaderlessSlots:  coordLeaderless,
		Converged:        cst.Converged,
	}
	return report, nil
}
