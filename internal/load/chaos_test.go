package load

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/nettrace"
	"repro/internal/obs"
	"repro/internal/transport"
)

// blackoutProfile is the acceptance campaign's fault schedule: a hard
// partition for all sessions from slot 600 to 780 (3 s at 60 FPS).
func blackoutProfile() *chaos.Profile {
	return &chaos.Profile{
		Name: "blackout-campaign",
		Seed: 99,
		Faults: []chaos.Fault{
			{Kind: chaos.FaultBlackout, StartSlot: 600, DurationSlots: 180},
		},
	}
}

// campaignRun executes the workload once through the sim engine with its own
// SLO monitor and breaker, optionally under the blackout profile.
func campaignRun(t *testing.T, w *Workload, withChaos bool) (*RunReport, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	slo := obs.NewSLOMonitor(obs.SLOConfig{
		WindowSlots:      300,
		ShortWindowSlots: 60,
	}, reg)
	brk := obs.NewBreaker(obs.BreakerConfig{
		Levels:        core.DefaultSystemParams().Levels,
		RecoverySlots: 120,
		HalfOpenSlots: 60,
	}, reg)
	cfg := SimConfig{
		NewAllocator: func() core.Allocator { return core.DVGreedy{} },
		AllocName:    "dv-greedy",
		SLO:          slo,
		Breaker:      brk,
	}
	if withChaos {
		cfg.Chaos = blackoutProfile()
	}
	rep, err := Simulate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep, reg
}

// TestSimChaosBlackoutCampaign is the PR's acceptance campaign: a seeded
// blackout must page the SLO monitor, trip the breaker into quality capping
// (not session dropping), reproduce bit-identically per seed, and recover
// the per-slot quality to within 5% of the fault-free run after the fault
// clears.
func TestSimChaosBlackoutCampaign(t *testing.T) {
	// Broadband-only traces with a 30 Mbps floor keep the FAULT-FREE run
	// clean (zero misses): every page and degraded slot below is then
	// attributable to the injected blackout, not workload noise. Poisson
	// churn matters too — the paper's variance term anchors each session's
	// quality at its own running mean, so a session that lived through a
	// long outage settles at a permanently lower level; with arrivals after
	// the fault, the SYSTEM recovers even though scarred sessions retire.
	w, err := Generate(Config{Shape: Poisson, RatePerSec: 0.5, Sessions: 60,
		HorizonSlots: 3000, Seed: 7, MeanHoldSec: 10,
		NetKinds: []nettrace.Kind{nettrace.Broadband},
		Net:      nettrace.Config{MinMbps: 30, MaxMbps: 100, Seconds: 300}})
	if err != nil {
		t.Fatal(err)
	}

	base, baseReg := campaignRun(t, w, false)
	rep, reg := campaignRun(t, w, true)
	rep2, _ := campaignRun(t, w, true)

	// Determinism: the same seed yields the same campaign, bit for bit.
	if !reflect.DeepEqual(rep.Outcomes, rep2.Outcomes) {
		t.Error("chaos campaign outcomes differ between identical seeded runs")
	}
	if !reflect.DeepEqual(rep.SlotQuality, rep2.SlotQuality) {
		t.Error("chaos campaign slot-quality series differ between identical seeded runs")
	}
	if rep.DegradedSlots != rep2.DegradedSlots {
		t.Errorf("degraded-slot counts differ: %d vs %d", rep.DegradedSlots, rep2.DegradedSlots)
	}

	// The fault must page the SLO monitor (the fault-free run must not).
	if got := reg.Counter("collabvr_slo_page_transitions_total").Value(); got == 0 {
		t.Error("blackout never drove the SLO monitor to page")
	}
	if got := baseReg.Counter("collabvr_slo_page_transitions_total").Value(); got != 0 {
		t.Errorf("fault-free run paged %d times", got)
	}

	// Graceful degradation: the breaker capped quality...
	if rep.DegradedSlots == 0 {
		t.Error("breaker never capped a slot during the fault")
	}
	if got := reg.Counter("collabvr_breaker_open_transitions_total").Value(); got == 0 {
		t.Error("breaker never opened under a full blackout")
	}
	// ...instead of dropping users: every session completes, as fault-free.
	if rep.Completed != base.Completed || rep.Completed != rep.Spawned {
		t.Errorf("completed %d of %d sessions under chaos, fault-free completed %d (no user may be dropped)",
			rep.Completed, rep.Spawned, base.Completed)
	}

	// During the blackout the displayed quality must collapse.
	if faultQ, baseQ := rep.MeanSlotQuality(650, 780), base.MeanSlotQuality(650, 780); faultQ > 0.2*baseQ {
		t.Errorf("blackout-window quality %.3f vs fault-free %.3f: fault had no bite", faultQ, baseQ)
	}
	// Recovery: the tail window is back within 5% of the fault-free run.
	tailQ := rep.MeanSlotQuality(2400, 3000)
	baseTailQ := base.MeanSlotQuality(2400, 3000)
	if tailQ < 0.95*baseTailQ {
		t.Errorf("tail quality %.3f did not recover to within 5%% of fault-free %.3f",
			tailQ, baseTailQ)
	}
	// The breaker must have closed again well before the horizon: the tail
	// window carries no degraded slots, which the recovery bound above
	// already implies, and the close-transition counter confirms directly.
	if got := reg.Counter("collabvr_breaker_close_transitions_total").Value(); got == 0 {
		t.Error("breaker never closed again after the fault cleared")
	}
}

// TestSimChaosSeedSensitivity: changing only the profile seed changes the
// packet-level fault stream (burst loss), while keeping the run valid.
func TestSimChaosSeedSensitivity(t *testing.T) {
	w, err := Generate(Config{Shape: Steady, Sessions: 4, HorizonSlots: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) *RunReport {
		rep, err := Simulate(w, SimConfig{
			NewAllocator: func() core.Allocator { return core.DVGreedy{} },
			Chaos: &chaos.Profile{
				Name: "loss", Seed: seed,
				Faults: []chaos.Fault{{Kind: chaos.FaultLoss, StartSlot: 50, DurationSlots: 300, P: 0.3}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1), run(2)
	if reflect.DeepEqual(a.SlotQuality, b.SlotQuality) {
		t.Error("different chaos seeds produced identical slot-quality series")
	}
}

// TestRunLiveChaosDrain drives the live engine under a blackout profile with
// client reconnect and a graceful drain, and checks nothing leaks: the
// end-to-end resilience path on real sockets.
func TestRunLiveChaosDrain(t *testing.T) {
	baseGoroutines := obs.LeakSnapshot()
	w, err := Generate(Config{Shape: Steady, Sessions: 6, HorizonSlots: 80,
		MeanHoldSec: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	slo := obs.NewSLOMonitor(obs.SLOConfig{WindowSlots: 40, ShortWindowSlots: 10}, reg)
	brk := obs.NewBreaker(obs.BreakerConfig{RecoverySlots: 20, HalfOpenSlots: 10}, reg)
	rep, err := RunLive(w, LiveConfig{
		SlotDuration: 5 * time.Millisecond,
		Metrics:      reg,
		SLO:          slo,
		Breaker:      brk,
		RetryPolicy:  transport.DefaultRetryPolicy(5 * time.Millisecond),
		Reconnect:    true,
		DrainTimeout: 2 * time.Second,
		Chaos: &chaos.Profile{
			Name: "live-blackout", Seed: 5,
			Faults: []chaos.Fault{
				{Kind: chaos.FaultBlackout, StartSlot: 20, DurationSlots: 20},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed+rep.Failed != rep.Spawned {
		t.Errorf("accounting leak: completed %d + failed %d != spawned %d",
			rep.Completed, rep.Failed, rep.Spawned)
	}
	if rep.Completed == 0 {
		t.Fatal("no session completed under chaos")
	}
	// The blackout must actually have dropped traffic on the wire.
	if got := reg.Counter("collabvr_server_tx_dropped_total").Value(); got == 0 {
		t.Error("blackout dropped no packets on the live transmit path")
	}
	obs.AssertNoLeaks(t, baseGoroutines)
}
