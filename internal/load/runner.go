package load

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/transport"
)

// loadMetrics bundles the harness's own instruments; all nil-safe.
type loadMetrics struct {
	spawned   *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	active    *obs.Gauge
	setupMs   *obs.Histogram
	qoe       *obs.Histogram
	missFrac  *obs.Histogram
}

func newLoadMetrics(r *obs.Registry) loadMetrics {
	return loadMetrics{
		spawned:   r.Counter("collabvr_loadgen_sessions_spawned_total"),
		completed: r.Counter("collabvr_loadgen_sessions_completed_total"),
		failed:    r.Counter("collabvr_loadgen_sessions_failed_total"),
		active:    r.Gauge("collabvr_loadgen_sessions_active"),
		setupMs:   r.Histogram("collabvr_loadgen_session_setup_ms", obs.DefaultLatencyBuckets()),
		qoe:       r.Histogram("collabvr_loadgen_session_qoe", obs.LinearBuckets(-2, 0.5, 20)),
		missFrac:  r.Histogram("collabvr_loadgen_session_deadline_miss_frac", obs.LinearBuckets(0.01, 0.05, 20)),
	}
}

// observeOutcome feeds one completed session into the histograms.
func (m *loadMetrics) observeOutcome(o SessionOutcome) {
	m.qoe.Observe(o.QoE)
	m.missFrac.Observe(o.MissFrac)
	if o.SetupMs > 0 {
		m.setupMs.Observe(o.SetupMs)
	}
}

// LiveConfig parametrizes a live workload execution: a real
// internal/server.Server on loopback sockets, one emulated client per
// session, per-session token-bucket shaping driven by each session's
// assigned network trace.
type LiveConfig struct {
	Params core.Params
	// NewAllocator builds the server's allocator; nil means the paper's
	// proposed algorithm.
	NewAllocator func() core.Allocator
	AllocName    string
	BudgetMbps   float64
	// SlotDuration is the real-time slot length (default: derived from the
	// workload's SlotsPerSecond). Scaling it up slows real time without
	// changing the decision pipeline — useful when a machine cannot sustain
	// 60 Hz for thousands of clients.
	SlotDuration time.Duration
	// MaxSessions forwards to server.Config.MaxSessions (accept
	// backpressure); 0 means unlimited.
	MaxSessions int
	// LossProb injects i.i.d. packet loss per session (0 = lossless).
	LossProb float64
	// Unshaped disables per-session token buckets (pure server-limit runs).
	Unshaped bool
	// Metrics receives server, client and harness instruments (shared
	// registry); nil disables.
	Metrics *obs.Registry
	// Recorder receives the server's per-slot decision records; nil
	// disables.
	Recorder *obs.Recorder
	// Tracer receives end-to-end request spans from the server pipeline and
	// every emulated client; nil disables tracing.
	Tracer *trace.Tracer
	// TraceEpoch salts deterministic trace-ID derivation (distinguishes
	// runs sharing an exporter).
	TraceEpoch uint64
	// SLO, when non-nil, tracks per-session deadline-miss and stall burn
	// rates from client ACKs.
	SLO *obs.SLOMonitor
	// Chaos, when non-nil, injects the profile's faults: per-session packet
	// faults and capacity cliffs ride the shaped transmit path (so Unshaped
	// disables them), server stall/slow-ACK faults hit the slot pipeline.
	Chaos *chaos.Profile
	// Breaker, when non-nil, is handed to the server for SLO-driven quality
	// capping; requires SLO.
	Breaker *obs.Breaker
	// RetryPolicy forwards to server.Config.RetryPolicy (NACK backoff and
	// abandonment); zero keeps immediate retransmission.
	RetryPolicy transport.RetryPolicy
	// Reconnect enables the clients' control-channel redial path.
	Reconnect bool
	// DrainTimeout, when positive, gracefully drains the server (flush
	// in-flight slots) before closing it at the end of the run.
	DrainTimeout time.Duration
	// Logf receives diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

func (c LiveConfig) withDefaults(sps float64) LiveConfig {
	if c.Params.Levels == 0 {
		c.Params = core.DefaultSystemParams()
	}
	if c.NewAllocator == nil {
		c.NewAllocator = func() core.Allocator { return core.NewSolverAllocator() }
		if c.AllocName == "" {
			c.AllocName = "proposed"
		}
	}
	if c.AllocName == "" {
		c.AllocName = "custom"
	}
	if c.BudgetMbps <= 0 {
		c.BudgetMbps = 400
	}
	if c.SlotDuration <= 0 {
		c.SlotDuration = time.Duration(float64(time.Second) / sps)
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// sessionNet is the per-session transmit path: the session's token bucket
// (rate driven by its network trace), optional i.i.d. loss, and optional
// chaos faults. It implements transport.Shaper, and transport.FaultInjector
// by delegation — the Sender detects the latter and consults it per packet.
type sessionNet struct {
	bucket *netem.TokenBucket
	loss   *netem.LossModel
	inj    *chaos.Injector // nil without a chaos profile
	caps   []float64
}

func (n *sessionNet) Admit(size int, now time.Time) time.Duration { return n.bucket.Admit(size, now) }
func (n *sessionNet) Drop() bool {
	if n.loss == nil {
		return false
	}
	return n.loss.Drop()
}
func (n *sessionNet) PacketFault() transport.PacketFault { return n.inj.PacketFault() }

// RunLive executes the workload against a live server over loopback
// sockets. Sessions are launched on a real-time slot clock at their arrival
// slots, run as independent client goroutines for their configured
// duration, and report their client-observed QoE on completion. The run
// ends when the horizon's slots have elapsed on the server; stragglers are
// drained by the server shutdown.
func RunLive(w *Workload, cfg LiveConfig) (*RunReport, error) {
	if len(w.Sessions) == 0 {
		return nil, fmt.Errorf("load: empty workload")
	}
	sps := w.Cfg.SlotsPerSecond
	if sps <= 0 {
		sps = 60
	}
	cfg = cfg.withDefaults(sps)
	start := time.Now()
	lm := newLoadMetrics(cfg.Metrics)

	// Per-session shaping state, built before the server starts so
	// ShaperFor is a pure lookup.
	nets := make(map[uint32]*sessionNet, len(w.Sessions))
	if !cfg.Unshaped {
		for _, spec := range w.Sessions {
			caps := w.CapSlots(spec)
			n := &sessionNet{
				bucket: netem.NewTokenBucket(caps[0], 16<<10, start),
				caps:   caps,
			}
			if cfg.LossProb > 0 {
				n.loss = netem.NewLossModel(cfg.LossProb, w.Cfg.Seed+int64(spec.ID)*131)
			}
			n.inj = chaos.NewInjector(cfg.Chaos, spec.ID)
			nets[spec.ID] = n
		}
	}

	srvCfg := server.DefaultConfig(cfg.NewAllocator())
	srvCfg.Params = cfg.Params
	srvCfg.SlotDuration = cfg.SlotDuration
	srvCfg.BudgetMbps = cfg.BudgetMbps
	srvCfg.TotalSlots = w.Cfg.HorizonSlots
	srvCfg.MaxSessions = cfg.MaxSessions
	srvCfg.Metrics = cfg.Metrics
	srvCfg.Recorder = cfg.Recorder
	srvCfg.Tracer = cfg.Tracer
	srvCfg.TraceEpoch = cfg.TraceEpoch
	srvCfg.SLO = cfg.SLO
	srvCfg.Breaker = cfg.Breaker
	srvCfg.RetryPolicy = cfg.RetryPolicy
	srvCfg.Chaos = chaos.NewServerInjector(cfg.Chaos)
	srvCfg.Logf = cfg.Logf
	if !cfg.Unshaped {
		srvCfg.ShaperFor = func(user uint32) transport.Shaper {
			if n, ok := nets[user]; ok {
				return n
			}
			return nil
		}
	}
	srv, err := server.New(srvCfg)
	if err != nil {
		return nil, err
	}

	report := &RunReport{
		Mode:         "live",
		Algorithm:    cfg.AllocName,
		HorizonSlots: w.Cfg.HorizonSlots,
		Spawned:      len(w.Sessions),
	}
	qoeParams := metrics.QoEParams{Alpha: cfg.Params.Alpha, Beta: cfg.Params.Beta}

	var (
		mu     sync.Mutex
		wg     sync.WaitGroup
		active int
	)
	noteStart := func() {
		mu.Lock()
		active++
		if active > report.PeakConcurrent {
			report.PeakConcurrent = active
		}
		mu.Unlock()
		lm.active.Add(1)
		lm.spawned.Inc()
	}
	noteEnd := func(res *client.Result, err error) {
		mu.Lock()
		defer mu.Unlock()
		active--
		lm.active.Add(-1)
		if err != nil || res == nil || res.Slots == 0 {
			// Errored, or rejected by backpressure before serving a slot.
			report.Failed++
			lm.failed.Inc()
			return
		}
		out := SessionOutcome{
			ID:       res.User,
			Slots:    res.Slots,
			QoE:      res.Report.QoE,
			Quality:  res.Report.Quality,
			DelayMs:  res.Report.Delay,
			Variance: res.Report.Variance,
			Coverage: res.Report.Coverage,
			MissFrac: 1 - res.Report.FPSFrac,
			SetupMs:  res.SetupMs,
		}
		report.Outcomes = append(report.Outcomes, out)
		report.Completed++
		lm.completed.Inc()
		lm.observeOutcome(out)
	}

	launch := func(spec SessionSpec) {
		noteStart()
		wg.Add(1)
		go func() {
			defer wg.Done()
			trace := w.MotionTrace(spec, 64)
			ccfg := client.DefaultConfig(spec.ID, srv.ControlAddr(), trace)
			ccfg.SlotDuration = cfg.SlotDuration
			ccfg.Params = qoeParams
			ccfg.Slots = spec.Slots()
			ccfg.Metrics = cfg.Metrics
			ccfg.Tracer = cfg.Tracer
			ccfg.Reconnect = cfg.Reconnect
			res, err := client.Run(ccfg)
			if err != nil {
				cfg.Logf("loadgen: session %d: %v", spec.ID, err)
			}
			noteEnd(res, err)
		}()
	}

	// Slot-clock scheduler: launches arrivals and drives each active
	// session's shaping rate along its network trace.
	schedDone := make(chan struct{})
	go func() {
		defer close(schedDone)
		ticker := time.NewTicker(cfg.SlotDuration)
		defer ticker.Stop()
		slot := 0
		next := 0
		for slot < w.Cfg.HorizonSlots {
			select {
			case <-srv.Done():
				return
			case now := <-ticker.C:
				for next < len(w.Sessions) && w.Sessions[next].ArriveSlot <= slot {
					launch(w.Sessions[next])
					next++
				}
				if !cfg.Unshaped {
					for _, spec := range w.Sessions[:next] {
						local := slot - spec.ArriveSlot
						n := nets[spec.ID]
						if local < 0 || local >= len(n.caps) {
							continue
						}
						n.inj.Advance(slot)
						// Cliffs scale the shaped rate; blackouts drop on the
						// packet path instead (a zero-rate bucket would stall
						// Admit for an hour, not a fault window).
						rate := n.caps[local] * n.inj.CapFactor()
						if rate != n.bucket.Rate() {
							n.bucket.SetRate(rate, now)
						}
					}
				}
				slot++
			}
		}
	}()

	<-srv.Done()
	<-schedDone
	if cfg.DrainTimeout > 0 {
		if !srv.Drain(cfg.DrainTimeout) {
			cfg.Logf("loadgen: drain timed out with unflushed sessions")
		}
	}
	if err := srv.Close(); err != nil {
		cfg.Logf("loadgen: server close: %v", err)
	}
	wg.Wait()
	report.WallSec = time.Since(start).Seconds()
	sortOutcomes(report.Outcomes)
	if h := cfg.Metrics.Histogram("collabvr_server_slot_decision_ms", obs.DefaultLatencyBuckets()); h.Count() > 0 {
		report.SlotDecisionP50Ms = h.Quantile(0.50)
		report.SlotDecisionP99Ms = h.Quantile(0.99)
	}
	return report, nil
}
