package load

import (
	"sync"
	"sync/atomic"
)

// simShard is the index-chunk size build workers claim per cursor bump —
// the same sharding granularity the server's slot pool and the batch
// solver use: big enough to amortize the atomic, small enough that a few
// expensive sessions do not serialize the phase behind one goroutine.
const simShard = 8

// parallelFor runs fn(i) for every i in [0, n), sharded across up to
// `workers` participants (the caller claims chunks too), and returns when
// every index has completed. workers <= 1 — or a job too small to split —
// runs inline. Unlike the server's persistent slot pool, goroutines are
// spawned per call: a sim build phase covers the whole active set, so the
// spawn cost is noise, and the engine stays goroutine-free at rest.
func parallelFor(n, workers int, fn func(int)) {
	parts := (n + simShard - 1) / simShard
	if parts > workers {
		parts = workers
	}
	if workers <= 1 || parts <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	work := func() {
		for {
			lo := int(cursor.Add(simShard)) - simShard
			if lo >= n {
				return
			}
			hi := lo + simShard
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(parts - 1)
	for i := 1; i < parts; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}
