package load

import (
	"fmt"
	"runtime"
	"slices"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/motion"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/tiles"
	"repro/internal/trace"
)

// SimConfig parametrizes the deterministic virtual-time engine. No wall
// clock, no sockets, no goroutines at rest: the same workload and config
// always produce the bit-identical RunReport, which is what makes recorded
// workloads usable as regression reproducers. Workers shards the per-slot
// build phase across goroutines, but every shard writes only its own
// session's index and the solve stays serial, so the report is
// bit-identical at any worker count.
type SimConfig struct {
	Params core.Params
	// NewAllocator builds the allocator (fresh per run, since some keep
	// state). Nil means the paper's proposed algorithm.
	NewAllocator func() core.Allocator
	// AllocName labels the report.
	AllocName string
	// BudgetMbps is the server's shared throughput budget B(t).
	BudgetMbps float64
	// DeadlineSlots is the display-pipeline tolerance: a frame whose
	// delivery delay exceeds DeadlineSlots slot-times misses its deadline
	// (default 2, matching the decode-at-t+1/display-at-t+2 pipelining).
	DeadlineSlots   int
	PredictorWindow int
	Coverage        motion.CoverageConfig
	SizeModelSeed   uint64
	// Metrics, when non-nil, receives the loadgen histograms (per-session
	// QoE, deadline-miss fraction).
	Metrics *obs.Registry
	// Tracer, when non-nil, emits the same span schema as the live engine,
	// on the virtual slot clock: slot boundaries become span timestamps, so
	// a sim run and a live run are analyzable by the same tooling. The
	// slot.decide span's duration is the measured wall time of the solve
	// (the one real cost inside a virtual-time slot); all transport spans
	// are purely virtual.
	Tracer *trace.Tracer
	// TraceEpoch salts trace-ID derivation, as in LiveConfig.
	TraceEpoch uint64
	// SLO, when non-nil, is fed each session's per-slot display outcome.
	SLO *obs.SLOMonitor
	// Chaos, when non-nil, injects the profile's faults into the virtual
	// network (per-session capacity cliffs, blackouts, slot drops) and the
	// virtual server (stall, slow ACK, both charged as delay).
	Chaos *chaos.Profile
	// Breaker, when non-nil, caps each session's allocated quality while
	// its SLO burns (graceful degradation: quality drops before users do).
	// Requires SLO, whose state feeds the breaker every slot.
	Breaker *obs.Breaker
	// Recorder, when non-nil, receives one decision SlotRecord per allocated
	// slot, with stable SessionIDs (indices shift under churn, IDs do not)
	// and the per-user objective decomposition.
	Recorder *obs.Recorder
	// CounterfactualK opts recorded decisions into top-K counterfactual
	// capture on heap-solver allocators (see core.SlotTrace.TopK). Zero
	// records no alternatives.
	CounterfactualK int
	// RegretRef, when set with Recorder, re-solves every recorded slot with
	// the pseudo-polynomial DP optimum and fills the record's regret fields
	// (OptimalValue, Regret, UserRegret) against it.
	RegretRef bool
	// RegretResolution is the DP budget grid step (<= 0: budget/2048).
	RegretResolution float64
	// Workers shards the per-slot build phase (prediction, tile selection,
	// rate/delay tables, per-session chaos advance) across this many
	// goroutines. The merged solve and the outcome accounting stay serial,
	// so the report is bit-identical at any setting. 0 means GOMAXPROCS;
	// 1 keeps the engine fully serial.
	Workers int
	// Health, when non-nil, runs one health-sampler pass per virtual slot
	// (after the slot's outcomes have landed in Metrics/SLO), so the sim
	// produces the same multi-resolution series schema as a live server.
	Health *tsdb.Sampler
	// WarmStart swaps the default allocator for the warm-start solver
	// (core.NewWarmAllocator), which replays the previous slot's pick log
	// when the problem is sparsely perturbed and falls back to a cold
	// solve otherwise — decisions are bit-identical either way. The sim
	// advances T every slot, which re-lowers every value, so here warm
	// start mostly exercises the fallback path (differential coverage);
	// fixed-T re-solves are where it wins. Ignored when NewAllocator is
	// set explicitly.
	WarmStart bool
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Params.Levels == 0 {
		c.Params = core.DefaultSystemParams()
	}
	if c.NewAllocator == nil {
		if c.WarmStart {
			c.NewAllocator = func() core.Allocator { return core.NewWarmAllocator() }
		} else {
			c.NewAllocator = func() core.Allocator { return core.NewSolverAllocator() }
		}
		if c.AllocName == "" {
			c.AllocName = "proposed"
		}
	}
	if c.AllocName == "" {
		c.AllocName = "custom"
	}
	if c.BudgetMbps <= 0 {
		c.BudgetMbps = 400
	}
	if c.DeadlineSlots <= 0 {
		c.DeadlineSlots = 2
	}
	if c.PredictorWindow <= 0 {
		c.PredictorWindow = motion.DefaultWindow
	}
	if c.Coverage == (motion.CoverageConfig{}) {
		c.Coverage = motion.DefaultCoverage()
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

// simSession is one active session's streaming state, mirroring the server's
// per-session estimators (delta_n and qbar_n are maintained exactly as
// server.session does).
type simSession struct {
	spec  SessionSpec
	trace motion.Trace
	caps  []float64
	pred  *motion.Predictor
	acc   *metrics.UserQoE
	inj   *chaos.Injector // nil without a chaos profile

	t          int
	sumViewedQ float64
	covered    int
	missed     int
	served     int

	// Per-slot build scratch, reused across slots. The rate/delay tables
	// are consumed by the solve and outcome phases within the same slot,
	// before the next build overwrites them.
	selBuf    []tiles.TileID
	ratesBuf  []float64
	delaysBuf []float64
}

func (s *simSession) delta() float64 { return (1 + float64(s.covered)) / float64(1+s.t) }

func (s *simSession) meanQ() float64 {
	if s.t == 0 {
		return 0
	}
	return s.sumViewedQ / float64(s.t)
}

// Simulate replays the workload through the full per-slot decision pipeline
// (prediction, tile selection, rate tables, M/M/1 delay, allocation) in
// virtual time, with session churn: sessions join the allocation problem at
// their arrival slot and leave at departure. Overload is modelled on the
// shared egress: when the allocated total exceeds the budget, the excess
// serialization time is charged to every active session's delay.
//
// The per-slot build phase shards across cfg.Workers goroutines: every
// active session occupies its arrival-order index, each shard writes only
// its own sessions' indices and touches only per-session state (predictor,
// chaos injector, scratch tables), and the merged solve plus the outcome
// accounting stay serial — so worker count never changes a single bit of
// the report.
func Simulate(w *Workload, cfg SimConfig) (*RunReport, error) {
	cfg = cfg.withDefaults()
	if len(w.Sessions) == 0 {
		return nil, fmt.Errorf("load: empty workload")
	}
	horizon := w.Cfg.HorizonSlots
	sps := w.Cfg.SlotsPerSecond
	if sps <= 0 {
		sps = 60
	}
	slotMs := 1000 / sps
	deadlineMs := float64(cfg.DeadlineSlots) * slotMs
	alloc := cfg.NewAllocator()
	sizeModel := tiles.NewSizeModel(cfg.SizeModelSeed)
	qoeParams := metrics.QoEParams{Alpha: cfg.Params.Alpha, Beta: cfg.Params.Beta}
	lm := newLoadMetrics(cfg.Metrics)

	byArrive := make(map[int][]SessionSpec)
	for _, s := range w.Sessions {
		byArrive[s.ArriveSlot] = append(byArrive[s.ArriveSlot], s)
	}

	report := &RunReport{
		Mode:           "sim",
		Algorithm:      cfg.AllocName,
		HorizonSlots:   horizon,
		Spawned:        len(w.Sessions),
		PeakConcurrent: w.PeakConcurrent(),
	}
	var active []*simSession
	users := make([]core.UserInput, 0, 64)
	type plan struct {
		sess    *simSession
		rates   []float64
		cov     bool
		cap_    float64
		dropped bool // chaos lost this slot's content on the wire
	}
	plans := make([]plan, 0, 64)

	finish := func(s *simSession) {
		cfg.SLO.Retire(s.spec.ID)
		cfg.Breaker.Retire(s.spec.ID)
		out := SessionOutcome{
			ID:       s.spec.ID,
			Slots:    s.acc.Slots(),
			QoE:      s.acc.QoE(),
			Quality:  s.acc.AvgQuality(),
			DelayMs:  s.acc.AvgDelay(),
			Variance: s.acc.Variance(),
			Coverage: s.acc.CoverageRate(),
		}
		if s.served > 0 {
			out.MissFrac = float64(s.missed) / float64(s.served)
		}
		report.Outcomes = append(report.Outcomes, out)
		report.Completed++
		lm.observeOutcome(out)
	}

	serverInj := chaos.NewServerInjector(cfg.Chaos)
	report.SlotQuality = make([]float64, 0, horizon)

	var regretRef core.Allocator
	if cfg.Recorder.Enabled() && cfg.RegretRef {
		regretRef = core.DPOptimal{Resolution: cfg.RegretResolution}
	}

	// With the recorder off nothing retains the allocation past the slot,
	// so heap-solver allocators can hand back their own scratch instead of
	// cloning it (identical values, zero per-slot allocation).
	var sharedAlloc core.SharedAllocator
	if sa, ok := alloc.(core.SharedAllocator); ok && !cfg.Recorder.Enabled() {
		sharedAlloc = sa
	}
	var problem core.SlotProblem

	for slot := 0; slot < horizon; slot++ {
		// Arrivals.
		for _, spec := range byArrive[slot] {
			active = append(active, &simSession{
				spec:  spec,
				trace: w.MotionTrace(spec, 0),
				caps:  w.CapSlots(spec),
				pred:  motion.NewPredictor(cfg.PredictorWindow),
				acc:   metrics.NewUserQoE(qoeParams),
				inj:   chaos.NewInjector(cfg.Chaos, spec.ID),
			})
		}
		// Departures.
		next := active[:0]
		for _, s := range active {
			if slot >= s.spec.DepartSlot {
				finish(s)
				continue
			}
			next = append(next, s)
		}
		active = next
		if len(active) == 0 {
			report.SlotQuality = append(report.SlotQuality, 0)
			cfg.Health.Sample(int64(slot))
			continue
		}

		// Server-side faults: a stalled pipeline or slowed ACK path charges
		// extra delay to every session this slot.
		serverInj.Advance(slot)
		stallMs := float64(serverInj.StallFor()+serverInj.AckDelay()) / float64(time.Millisecond)

		// Build the slot problem over the active set, sharded by session
		// index. Every shard reads shared immutable state (size model,
		// coverage config) and writes only active[i]'s own fields and the
		// i-th problem row, so the result is identical at any worker count.
		users = slices.Grow(users[:0], len(active))[:len(active)]
		plans = slices.Grow(plans[:0], len(active))[:len(active)]
		parallelFor(len(active), cfg.Workers, func(i int) {
			s := active[i]
			local := slot - s.spec.ArriveSlot
			actual := s.trace[local]
			predicted := s.pred.Predict()
			if local <= cfg.PredictorWindow {
				predicted = actual
			}
			cell := tiles.CellFor(predicted.Pos)
			s.selBuf = tiles.ForViewAppend(s.selBuf[:0], predicted, cfg.Coverage.FoV, cfg.Coverage.MarginDeg)
			if s.ratesBuf == nil {
				s.ratesBuf = make([]float64, tiles.Levels)
				s.delaysBuf = make([]float64, tiles.Levels)
			}
			sizeModel.RateTableInto(s.ratesBuf, cell, s.selBuf)
			cap_ := s.caps[local]
			s.inj.Advance(slot)
			// Chaos capacity faults: cliffs scale the link, a blackout zeroes
			// it (MM1Delay then saturates and the frame misses); a per-slot
			// drop loses the slot's content outright.
			cap_ *= s.inj.SimCapFactor()
			netem.DelayTableMsInto(s.delaysBuf, s.ratesBuf, cap_, slotMs)
			users[i] = core.UserInput{
				Rate:  s.ratesBuf,
				Delay: s.delaysBuf,
				Delta: s.delta(),
				MeanQ: s.meanQ(),
				Cap:   cap_,
			}
			plans[i] = plan{
				sess: s, rates: s.ratesBuf,
				cov:  cfg.Coverage.Covered(predicted, actual),
				cap_: cap_, dropped: s.inj.Drop(),
			}
			s.pred.Observe(actual)
		})
		problem.T, problem.Budget, problem.Users = slot+1, cfg.BudgetMbps, users
		var solveStart time.Time
		if cfg.Tracer.Enabled() {
			solveStart = time.Now()
		}
		var allocation core.Allocation
		var slotTr *core.SlotTrace
		if cfg.Recorder.Enabled() {
			if ta, ok := alloc.(core.TracingAllocator); ok {
				slotTr = &core.SlotTrace{TopK: cfg.CounterfactualK}
				allocation = ta.AllocateTraced(cfg.Params, &problem, slotTr)
			}
		}
		if slotTr == nil {
			if sharedAlloc != nil {
				// Levels alias the solver's scratch, valid until the next
				// solve; the outcome phase below consumes them this slot.
				allocation = sharedAlloc.AllocateShared(cfg.Params, &problem)
			} else {
				allocation = alloc.Allocate(cfg.Params, &problem)
			}
		}
		var slotNs, solveNs int64
		if cfg.Tracer.Enabled() {
			solveNs = time.Since(solveStart).Nanoseconds()
			slotNs = int64(float64(slot) * slotMs * 1e6)
		}
		if cfg.Recorder.Enabled() {
			ids := make([]uint32, len(plans))
			for i := range plans {
				ids[i] = plans[i].sess.spec.ID
			}
			recordSimSlot(&cfg, slot, &problem, allocation, slotTr, ids, regretRef)
		}

		// Shared-egress overload: the allocator respects the budget when it
		// can, but when even the mandatory minimum levels exceed it (the
		// overload regime capacity search hunts for), delivering R Mbps of
		// slot content over a B-Mbps egress takes R/B slot-times; the excess
		// is charged to every session.
		overloadMs := 0.0
		if allocation.Rate > cfg.BudgetMbps && cfg.BudgetMbps > 0 {
			overloadMs = (allocation.Rate/cfg.BudgetMbps - 1) * slotMs
		}

		qualitySum := 0.0
		for i, p := range plans {
			q := allocation.Levels[i]
			// Graceful degradation: while the session's SLO burns, the
			// breaker caps its quality — shedding load (bytes) before
			// shedding the user.
			if bcap := cfg.Breaker.Cap(p.sess.spec.ID); bcap > 0 && q > bcap {
				q = bcap
				report.DegradedSlots++
			}
			rate := p.rates[q-1]
			delay := netem.DelayMs(rate, p.cap_, slotMs) + overloadMs + stallMs
			covered := p.cov
			missed := p.dropped || delay > deadlineMs
			if missed {
				// The frame is dropped, not displayed late: clamp the
				// charged delay at the pipeline bound (as the client does)
				// and void its coverage.
				covered = false
				delay = deadlineMs
			}
			s := p.sess
			s.served++
			if missed {
				s.missed++
			}
			s.t++
			if covered {
				s.covered++
				s.sumViewedQ += float64(q)
			}
			s.acc.Observe(q, covered, delay)
			s.acc.ObserveFrame(!missed)

			quality := float64(q)
			if missed {
				quality = 0
			}
			qualitySum += quality
			cfg.SLO.ObserveSlot(s.spec.ID, !missed, quality)
			cfg.Breaker.Observe(s.spec.ID, cfg.SLO.State(s.spec.ID))

			if tr := cfg.Tracer; tr.Enabled() {
				user, vslot := s.spec.ID, uint32(slot)
				tid := trace.TileTraceID(cfg.TraceEpoch, user, vslot)
				delayNs := int64(delay * 1e6)
				// rate Mbps over a slotMs slot = rate*slotMs*125 bytes.
				bytes := int(rate * slotMs * 125)

				d := tr.StartAt(tid, trace.StageDecide, trace.SideServer, user, vslot, slotNs)
				d.SetAlgo(cfg.AllocName)
				d.SetLevel(q)
				d.SetTiles(len(plans))
				d.EndAt(slotNs + solveNs)

				tx := tr.StartAt(tid, trace.StageSend, trace.SideServer, user, vslot, slotNs)
				tx.SetLevel(q)
				tx.SetBytes(bytes)
				tx.EndAt(slotNs + delayNs)

				rx := tr.StartAt(tid, trace.StageRecv, trace.SideClient, user, vslot, slotNs)
				rx.SetBytes(bytes)
				rx.EndAt(slotNs + delayNs)

				disp := tr.StartAt(tid, trace.StageDisplay, trace.SideClient, user, vslot, slotNs+delayNs)
				disp.SetLevel(q)
				if missed {
					disp.SetOutcome(trace.OutcomeMissed)
				} else {
					disp.SetOutcome(trace.OutcomeDisplayed)
				}
				disp.EndAt(slotNs + delayNs)
			}
		}
		report.SlotQuality = append(report.SlotQuality, qualitySum/float64(len(plans)))
		cfg.Health.Sample(int64(slot))
	}
	// Sessions alive at the horizon end complete there.
	for _, s := range active {
		finish(s)
	}
	sortOutcomes(report.Outcomes)
	return report, nil
}

// recordSimSlot builds and records the decision flight-recorder entry for
// one simulated slot: the chosen allocation with its per-user objective
// decomposition, the trace's rejections and counterfactual alternatives,
// and (when a regret reference is configured) the DP optimum's view of the
// same problem. Every slice is freshly allocated because the recorder ring
// and the attributor alias them.
func recordSimSlot(cfg *SimConfig, slot int, p *core.SlotProblem, a core.Allocation,
	tr *core.SlotTrace, ids []uint32, ref core.Allocator) {
	rec := obs.SlotRecord{
		Algorithm:  cfg.AllocName,
		Slot:       slot,
		Levels:     a.Levels,
		Value:      a.Value,
		RateMbps:   a.Rate,
		BudgetMbps: p.Budget,
		SessionIDs: ids,
		UserValues: make([]float64, len(p.Users)),
	}
	if p.Budget > 0 {
		rec.Utilization = a.Rate / p.Budget
	}
	if tr != nil {
		rec.Branch = tr.Branch
		rec.Upgrades = tr.Upgrades
		rec.Rejections = tr.Rejections
		rec.Alternatives = tr.Alternatives
	}
	for i := range p.Users {
		terms := core.ObjectiveTerms(cfg.Params, p.T, p.Users[i], a.Levels[i])
		rec.UserValues[i] = terms.Quality - terms.Delay - terms.Variance
		rec.QualityTerm += terms.Quality
		rec.DelayTerm += terms.Delay
		rec.VarianceTerm += terms.Variance
	}
	if ref != nil {
		opt := ref.Allocate(cfg.Params, p)
		rec.HasRegret = true
		rec.OptimalValue = opt.Value
		// Sub-1e-9 differences are summation-order noise between the DP and
		// greedy engines evaluating the same allocation; call them a tie.
		if r := opt.Value - a.Value; r > 1e-9 {
			rec.Regret = r
		}
		rec.UserRegret = make([]float64, len(p.Users))
		for i := range p.Users {
			rec.UserRegret[i] = core.Objective(cfg.Params, p.T, p.Users[i], opt.Levels[i]) - rec.UserValues[i]
		}
	}
	cfg.Recorder.Record(&rec)
}
