package load

import (
	"fmt"
	"sort"
	"strings"
)

// SessionOutcome is the measured result of one completed session.
type SessionOutcome struct {
	ID    uint32
	Slots int
	// QoE components, per-slot averages as in metrics.Report.
	QoE      float64
	Quality  float64
	DelayMs  float64
	Variance float64
	Coverage float64
	// MissFrac is the fraction of the session's slots whose frame missed its
	// display deadline.
	MissFrac float64
	// SetupMs is the session setup latency (dial + handshake); live runs
	// only.
	SetupMs float64
}

// RunReport aggregates one workload execution.
type RunReport struct {
	Mode         string // "sim" or "live"
	Algorithm    string
	HorizonSlots int
	// Spawned counts sessions the workload scheduled; Completed those that
	// ran at least one slot; Failed those that errored or were rejected by
	// server backpressure before serving anything.
	Spawned   int
	Completed int
	Failed    int
	// PeakConcurrent is the maximum simultaneously active session count
	// (measured for live runs, schedule-derived for sim runs).
	PeakConcurrent int
	// WallSec is the wall-clock duration of a live run (0 for sim).
	WallSec float64
	// SlotDecisionP50Ms/P99Ms quote the server's slot-decision latency
	// histogram when a live run shares a metrics registry (0 otherwise).
	SlotDecisionP50Ms float64
	SlotDecisionP99Ms float64
	// SlotQuality is the per-slot mean displayed quality across active
	// sessions (0 for missed frames and empty slots), recorded by the sim
	// engine. It is what chaos-recovery analysis plots: the QoE dip during
	// a fault window and the climb back after it.
	SlotQuality []float64
	// DegradedSlots counts session-slots whose allocation the circuit
	// breaker capped below the allocator's choice (sim engine).
	DegradedSlots int
	// Outcomes holds every completed session, sorted by ID.
	Outcomes []SessionOutcome
}

// MeanSlotQuality averages SlotQuality over [from, to) (slot indexes are
// clamped to the recorded range; returns 0 when the window is empty).
func (r *RunReport) MeanSlotQuality(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(r.SlotQuality) {
		to = len(r.SlotQuality)
	}
	if from >= to {
		return 0
	}
	sum := 0.0
	for _, q := range r.SlotQuality[from:to] {
		sum += q
	}
	return sum / float64(to-from)
}

// AggregateMissRate returns the slot-weighted deadline-miss fraction across
// all completed sessions — the capacity-search criterion.
func (r *RunReport) AggregateMissRate() float64 {
	var missed, total float64
	for _, o := range r.Outcomes {
		missed += o.MissFrac * float64(o.Slots)
		total += float64(o.Slots)
	}
	if total == 0 {
		return 0
	}
	return missed / total
}

// percentile interpolates the p-quantile (0..1) of unsorted samples.
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i] + frac*(s[i+1]-s[i])
}

// column extracts one outcome field across sessions.
func (r *RunReport) column(get func(SessionOutcome) float64) []float64 {
	out := make([]float64, len(r.Outcomes))
	for i, o := range r.Outcomes {
		out[i] = get(o)
	}
	return out
}

// Format renders the end-of-run report: session accounting, then per-session
// percentiles of QoE, delivery delay, deadline-miss fraction and setup
// latency.
func (r *RunReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# loadgen report (%s, algorithm %s)\n", r.Mode, r.Algorithm)
	fmt.Fprintf(&b, "sessions: spawned %d, completed %d, failed %d, peak concurrent %d\n",
		r.Spawned, r.Completed, r.Failed, r.PeakConcurrent)
	fmt.Fprintf(&b, "horizon: %d slots", r.HorizonSlots)
	if r.WallSec > 0 {
		fmt.Fprintf(&b, " (%.1f s wall)", r.WallSec)
	}
	fmt.Fprintf(&b, "\naggregate deadline-miss rate: %.4f\n", r.AggregateMissRate())
	if r.DegradedSlots > 0 {
		fmt.Fprintf(&b, "breaker-degraded session-slots: %d\n", r.DegradedSlots)
	}
	if r.SlotDecisionP99Ms > 0 {
		fmt.Fprintf(&b, "server slot decision latency: p50 %.3f ms, p99 %.3f ms\n",
			r.SlotDecisionP50Ms, r.SlotDecisionP99Ms)
	}
	if len(r.Outcomes) == 0 {
		b.WriteString("no completed sessions\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-16s %10s %10s %10s %10s\n", "per-session", "p50", "p90", "p99", "mean")
	row := func(name string, get func(SessionOutcome) float64) {
		col := r.column(get)
		var sum float64
		for _, v := range col {
			sum += v
		}
		fmt.Fprintf(&b, "%-16s %10.4f %10.4f %10.4f %10.4f\n", name,
			percentile(col, 0.50), percentile(col, 0.90), percentile(col, 0.99),
			sum/float64(len(col)))
	}
	row("qoe", func(o SessionOutcome) float64 { return o.QoE })
	row("quality", func(o SessionOutcome) float64 { return o.Quality })
	row("delay_ms", func(o SessionOutcome) float64 { return o.DelayMs })
	row("miss_frac", func(o SessionOutcome) float64 { return o.MissFrac })
	if r.Mode == "live" {
		row("setup_ms", func(o SessionOutcome) float64 { return o.SetupMs })
	}
	return b.String()
}

// sortOutcomes orders outcomes by session ID.
func sortOutcomes(out []SessionOutcome) {
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
}
