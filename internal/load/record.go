package load

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The JSONL workload format is one event object per line:
//
//	{"e":"config","cfg":{...}}            — first line, the generator config
//	{"e":"arrive","slot":S,"sess":{...}}  — a session arrives (full spec)
//	{"e":"pose","slot":S,"id":N,...}      — optional per-slot pose events
//	{"e":"depart","slot":S,"id":N}        — a session departs
//
// Events are ordered by slot, then by kind (arrive < pose < depart), then by
// session ID, so generation is deterministic down to the byte: the same seed
// always produces the identical file. Pose events are derivable from the
// arrive specs (motion traces are seeded), so they are optional — included
// they make the file a self-contained event log, omitted they keep a
// thousand-session workload small.

// event is the one-per-line JSONL record.
type event struct {
	E    string       `json:"e"`
	Slot int          `json:"slot,omitempty"`
	Cfg  *Config      `json:"cfg,omitempty"`
	Sess *SessionSpec `json:"sess,omitempty"`
	ID   *uint32      `json:"id,omitempty"`
	// Pose fields (e == "pose").
	X     float64 `json:"x,omitempty"`
	Y     float64 `json:"y,omitempty"`
	Z     float64 `json:"z,omitempty"`
	Yaw   float64 `json:"yaw,omitempty"`
	Pitch float64 `json:"pitch,omitempty"`
	Roll  float64 `json:"roll,omitempty"`
}

// WriteJSONL serializes the workload as a JSONL event stream. With
// includePoses every session's per-slot pose is written too, making the file
// the full arrival/pose/departure event log; without, only arrivals and
// departures are recorded (poses regenerate from the session specs).
func (w *Workload) WriteJSONL(out io.Writer, includePoses bool) error {
	bw := bufio.NewWriter(out)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(event{E: "config", Cfg: &w.Cfg}); err != nil {
		return fmt.Errorf("load: write config: %w", err)
	}

	// Bucket events by slot. Sessions are sorted by (arrive, ID) already;
	// departures and poses are emitted in ID order per slot.
	byArrive := make(map[int][]int) // slot -> session indexes
	byDepart := make(map[int][]int)
	maxSlot := 0
	for i, s := range w.Sessions {
		byArrive[s.ArriveSlot] = append(byArrive[s.ArriveSlot], i)
		byDepart[s.DepartSlot] = append(byDepart[s.DepartSlot], i)
		if s.DepartSlot > maxSlot {
			maxSlot = s.DepartSlot
		}
	}
	var traces map[int][]eventPose
	if includePoses {
		traces = make(map[int][]eventPose, len(w.Sessions))
	}
	active := make([]int, 0)
	for slot := 0; slot <= maxSlot; slot++ {
		for _, i := range byArrive[slot] {
			s := w.Sessions[i]
			if err := enc.Encode(event{E: "arrive", Slot: slot, Sess: &s}); err != nil {
				return fmt.Errorf("load: write arrive: %w", err)
			}
			if includePoses {
				tr := w.MotionTrace(s, 0)
				ps := make([]eventPose, len(tr))
				for k, p := range tr {
					ps[k] = eventPose{p.Pos.X, p.Pos.Y, p.Pos.Z, p.Yaw, p.Pitch, p.Roll}
				}
				traces[i] = ps
				active = insertSorted(active, i, w.Sessions)
			}
		}
		if includePoses {
			next := active[:0]
			for _, i := range active {
				s := w.Sessions[i]
				if slot >= s.DepartSlot {
					continue
				}
				next = append(next, i)
				p := traces[i][slot-s.ArriveSlot]
				id := s.ID
				if err := enc.Encode(event{E: "pose", Slot: slot, ID: &id,
					X: p.x, Y: p.y, Z: p.z, Yaw: p.yaw, Pitch: p.pitch, Roll: p.roll}); err != nil {
					return fmt.Errorf("load: write pose: %w", err)
				}
			}
			active = next
		}
		for _, i := range byDepart[slot] {
			id := w.Sessions[i].ID
			if err := enc.Encode(event{E: "depart", Slot: slot, ID: &id}); err != nil {
				return fmt.Errorf("load: write depart: %w", err)
			}
			delete(traces, i)
		}
	}
	return bw.Flush()
}

type eventPose struct{ x, y, z, yaw, pitch, roll float64 }

// insertSorted keeps the active-index list ordered by session ID.
func insertSorted(list []int, idx int, specs []SessionSpec) []int {
	list = append(list, idx)
	for j := len(list) - 1; j > 0 && specs[list[j-1]].ID > specs[list[j]].ID; j-- {
		list[j-1], list[j] = list[j], list[j-1]
	}
	return list
}

// ReadJSONL parses a workload written by WriteJSONL. Pose events are
// validated for shape but not stored (they regenerate from the specs);
// depart events are checked against the arrive specs so a hand-edited file
// cannot silently disagree with itself.
func ReadJSONL(in io.Reader) (*Workload, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	w := &Workload{}
	sawConfig := false
	byID := make(map[uint32]SessionSpec)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("load: line %d: %w", line, err)
		}
		switch ev.E {
		case "config":
			if ev.Cfg == nil {
				return nil, fmt.Errorf("load: line %d: config event without cfg", line)
			}
			w.Cfg = *ev.Cfg
			sawConfig = true
		case "arrive":
			if ev.Sess == nil {
				return nil, fmt.Errorf("load: line %d: arrive event without sess", line)
			}
			s := *ev.Sess
			if _, dup := byID[s.ID]; dup {
				return nil, fmt.Errorf("load: line %d: duplicate session %d", line, s.ID)
			}
			w.Sessions = append(w.Sessions, s)
			byID[s.ID] = s
		case "depart":
			if ev.ID == nil {
				return nil, fmt.Errorf("load: line %d: depart event without id", line)
			}
			s, ok := byID[*ev.ID]
			if !ok {
				return nil, fmt.Errorf("load: line %d: depart of unknown session %d", line, *ev.ID)
			}
			if s.DepartSlot != ev.Slot {
				return nil, fmt.Errorf("load: line %d: session %d departs at %d, spec says %d",
					line, *ev.ID, ev.Slot, s.DepartSlot)
			}
		case "pose":
			if ev.ID == nil {
				return nil, fmt.Errorf("load: line %d: pose event without id", line)
			}
		default:
			return nil, fmt.Errorf("load: line %d: unknown event %q", line, ev.E)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("load: read: %w", err)
	}
	if !sawConfig {
		return nil, fmt.Errorf("load: missing config line")
	}
	// Re-sort defensively in case the file was concatenated or hand-edited
	// out of order.
	sortSessions(w.Sessions)
	return w, nil
}
