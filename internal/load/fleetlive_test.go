package load

import (
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

func liveFleetWorkload(t *testing.T, sessions, horizon int) *Workload {
	t.Helper()
	w, err := Generate(Config{
		Shape:        Steady,
		Seed:         7,
		HorizonSlots: horizon,
		Sessions:     sessions,
		RampSlots:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestRunLiveFleetShardKill: a real shard server dies mid-run; its clients
// redial through the coordinator's Redirect hook onto the survivor and
// every session still completes.
func TestRunLiveFleetShardKill(t *testing.T) {
	base := obs.LeakSnapshot()
	w := liveFleetWorkload(t, 4, 240)
	cfg := FleetLiveConfig{
		Shards: 2,
		Live: LiveConfig{
			SlotDuration: 5 * time.Millisecond,
			BudgetMbps:   300,
			Unshaped:     true,
			Chaos: &chaos.Profile{
				Name:   "live-kill",
				Seed:   7,
				Faults: []chaos.Fault{{Kind: chaos.FaultShardKill, StartSlot: 80, Shard: 0}},
			},
			Logf: t.Logf,
		},
	}
	rep, err := RunLiveFleet(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Spawned || rep.Failed != 0 {
		t.Errorf("completed %d/%d (failed %d) — shard kill dropped sessions",
			rep.Completed, rep.Spawned, rep.Failed)
	}
	if rep.Shards[0].KilledSlot != 80 {
		t.Errorf("shard 0 KilledSlot = %d, want 80", rep.Shards[0].KilledSlot)
	}
	if rep.Shards[0].MigratedOut == 0 {
		t.Error("killed shard handed off no sessions")
	}
	if rep.Migrations != rep.Shards[0].MigratedOut {
		t.Errorf("Migrations = %d, want %d", rep.Migrations, rep.Shards[0].MigratedOut)
	}
	if rep.Mode != "fleet-live" {
		t.Errorf("Mode = %q", rep.Mode)
	}
	obs.AssertNoLeaks(t, base)
}

// TestRunLiveFleetDrainResumes: a drain migrates real sessions through the
// full export/adopt/Welcome-resume path — the handoff counters on the
// shared registry prove state moved rather than restarted.
func TestRunLiveFleetDrainResumes(t *testing.T) {
	reg := obs.NewRegistry()
	w := liveFleetWorkload(t, 4, 240)
	rec := obs.NewPlacementRecorder(obs.PlacementRecorderOptions{RingSize: 32, Metrics: reg})
	cfg := FleetLiveConfig{
		Shards:   2,
		Recorder: rec,
		Live: LiveConfig{
			SlotDuration: 5 * time.Millisecond,
			BudgetMbps:   300,
			Unshaped:     true,
			Metrics:      reg,
			Chaos: &chaos.Profile{
				Name:   "live-drain",
				Seed:   7,
				Faults: []chaos.Fault{{Kind: chaos.FaultShardDrain, StartSlot: 80, Shard: 1}},
			},
			Logf: t.Logf,
		},
	}
	rep, err := RunLiveFleet(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Spawned || rep.Failed != 0 {
		t.Errorf("completed %d/%d (failed %d)", rep.Completed, rep.Spawned, rep.Failed)
	}
	if rep.Shards[1].DrainSlot != 80 {
		t.Errorf("shard 1 DrainSlot = %d, want 80", rep.Shards[1].DrainSlot)
	}
	if rep.Shards[1].MigratedOut == 0 {
		t.Fatal("drained shard migrated nothing")
	}
	out := reg.Counter("collabvr_server_sessions_handoff_out_total").Value()
	in := reg.Counter("collabvr_server_sessions_handoff_in_total").Value()
	if out == 0 || out != in {
		t.Errorf("handoff counters out=%d in=%d, want equal and nonzero", out, in)
	}
	if got := reg.Counter("collabvr_fleet_migrations_total").Value(); got != uint64(rep.Migrations) {
		t.Errorf("fleet migrations counter %d, report %d", got, rep.Migrations)
	}
	drains := 0
	for _, r := range rec.Recent(32) {
		if r.Reason == obs.PlaceShardDrain {
			drains++
		}
	}
	if drains != rep.Migrations {
		t.Errorf("%d drain placement records, %d migrations", drains, rep.Migrations)
	}
}

// TestFindFleetCapacity: both searches run against a synthetic
// budget-proportional knee and the verdicts land where the model says.
func TestFindFleetCapacity(t *testing.T) {
	probe := func(n, shards int, budget float64) (float64, error) {
		// Knee model: every 10 Mbps of budget carries one session,
		// regardless of sharding — pooling efficiency exactly 1.
		if float64(n) > budget/10 {
			return 0.5, nil
		}
		return 0, nil
	}
	res, err := FindFleetCapacity(1, 64, 0.01, 3, 300, probe)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fleet.MaxSessions != 30 {
		t.Errorf("fleet capacity = %d, want 30", res.Fleet.MaxSessions)
	}
	if res.PerShard.MaxSessions != 10 {
		t.Errorf("per-shard capacity = %d, want 10", res.PerShard.MaxSessions)
	}
	if eff := res.PoolingEfficiency(); eff != 1.0 {
		t.Errorf("pooling efficiency = %v, want 1.0", eff)
	}
	text := res.Format()
	for _, want := range []string{"fleet total", "per-shard knee", "pooling efficiency"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format missing %q:\n%s", want, text)
		}
	}

	// A failing floor bottoms out both searches without error.
	res, err = FindFleetCapacity(1, 8, 0.01, 2, 0.1, probe)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fleet.MaxSessions != 0 || res.PerShard.MaxSessions != 0 {
		t.Errorf("starved fleet found capacity %d/%d, want 0/0",
			res.Fleet.MaxSessions, res.PerShard.MaxSessions)
	}
	if res.PoolingEfficiency() != 0 {
		t.Errorf("pooling efficiency %v for starved fleet, want 0", res.PoolingEfficiency())
	}
}

// TestFleetSimCapacityProbe wires FindFleetCapacity to the deterministic
// fleet engine end to end, at toy scale: the search must complete and find
// at least one sustainable session at a generous budget.
func TestFleetSimCapacityProbe(t *testing.T) {
	probe := func(n, shards int, budget float64) (float64, error) {
		w, err := Generate(Config{
			Shape:        Steady,
			Seed:         5,
			HorizonSlots: 120,
			Sessions:     n,
		})
		if err != nil {
			return 0, err
		}
		cfg := FleetSimConfig{Shards: shards}
		cfg.Sim.BudgetMbps = budget
		rep, err := SimulateFleet(w, cfg)
		if err != nil {
			return 0, err
		}
		return rep.AggregateMissRate(), nil
	}
	res, err := FindFleetCapacity(1, 8, 0.05, 2, 400, probe)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fleet.MaxSessions < 1 {
		t.Errorf("fleet capacity %d, want >= 1", res.Fleet.MaxSessions)
	}
	if res.PerShard.MaxSessions < 1 {
		t.Errorf("per-shard capacity %d, want >= 1", res.PerShard.MaxSessions)
	}
}

// TestRunLiveFleetCoordLeaderKill: the replicated coordinator under the
// live runner — the chaos schedule kills the lease-holding leader mid-run,
// the survivors elect on the real slot clock, and every session still
// completes; the report carries the leadership history.
func TestRunLiveFleetCoordLeaderKill(t *testing.T) {
	base := obs.LeakSnapshot()
	w := liveFleetWorkload(t, 4, 240)
	cfg := FleetLiveConfig{
		Shards:       2,
		Coordinators: 3,
		Live: LiveConfig{
			SlotDuration: 5 * time.Millisecond,
			BudgetMbps:   300,
			Unshaped:     true,
			Chaos: &chaos.Profile{
				Name:   "live-coord-kill",
				Seed:   7,
				Faults: []chaos.Fault{{Kind: chaos.FaultCoordKill, StartSlot: 80, Replica: 0}},
			},
			Logf: t.Logf,
		},
	}
	cfg.Coord.LeaseSlots = 4
	rep, err := RunLiveFleet(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Spawned || rep.Failed != 0 {
		t.Errorf("completed %d/%d (failed %d) — coordinator failover dropped sessions",
			rep.Completed, rep.Spawned, rep.Failed)
	}
	co := rep.Coord
	if co == nil {
		t.Fatal("no coord outcome in the live report")
	}
	if co.Replicas != 3 || co.Elections < 1 || co.Term < 2 {
		t.Errorf("coord outcome %+v, want 3 replicas and an election past bootstrap", co)
	}
	if co.LeaderlessSlots == 0 {
		t.Error("leader kill cost no leaderless slots")
	}
	if !co.Converged {
		t.Error("replicas did not converge")
	}
	obs.AssertNoLeaks(t, base)

	// A replica outside the cluster is a config error, like shard range.
	bad := cfg
	bad.Live.Chaos = &chaos.Profile{
		Name:   "live-coord-kill-oob",
		Seed:   7,
		Faults: []chaos.Fault{{Kind: chaos.FaultCoordKill, StartSlot: 80, Replica: 5}},
	}
	if _, err := RunLiveFleet(w, bad); err == nil {
		t.Error("out-of-range coordinator replica fault accepted")
	}
}
