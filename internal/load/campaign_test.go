package load

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/chaos"
)

// churnWorkload generates a Poisson workload capped at `sessions` sessions
// with sub-second holds, so the active set churns every few slots — the
// regime where build-phase sharding and warm-start fallback both have to
// prove they change nothing.
func churnWorkload(tb testing.TB, sessions, horizon int, seed int64) *Workload {
	tb.Helper()
	w, err := Generate(Config{
		Shape:          Poisson,
		Seed:           seed,
		HorizonSlots:   horizon,
		SlotsPerSecond: 60,
		Sessions:       sessions,
		RatePerSec:     1.25 * float64(sessions) * 60 / float64(horizon),
		MeanHoldSec:    0.8,
	})
	if err != nil {
		tb.Fatalf("generate workload: %v", err)
	}
	if len(w.Sessions) < sessions*9/10 {
		tb.Fatalf("workload underfilled: got %d sessions, want ~%d", len(w.Sessions), sessions)
	}
	return w
}

// campaignChaos mixes a capacity cliff, a blackout, and slot loss so the
// differential runs cover the injector paths, not just the happy path.
func campaignChaos() *chaos.Profile {
	return &chaos.Profile{
		Name: "campaign-mixed",
		Seed: 7,
		Faults: []chaos.Fault{
			{Kind: chaos.FaultBandwidth, StartSlot: 60, DurationSlots: 120, Factor: 0.4},
			{Kind: chaos.FaultBlackout, StartSlot: 240, DurationSlots: 30},
			{Kind: chaos.FaultLoss, StartSlot: 320, DurationSlots: 80, P: 0.05},
		},
	}
}

func mustSimulate(tb testing.TB, w *Workload, cfg SimConfig) *RunReport {
	tb.Helper()
	rep, err := Simulate(w, cfg)
	if err != nil {
		tb.Fatalf("simulate: %v", err)
	}
	return rep
}

// diffReports pinpoints the first divergence so a failure says more than
// "not DeepEqual".
func diffReports(tb testing.TB, label string, a, b *RunReport) {
	tb.Helper()
	if reflect.DeepEqual(a, b) {
		return
	}
	if len(a.Outcomes) != len(b.Outcomes) {
		tb.Fatalf("%s: outcome count %d vs %d", label, len(a.Outcomes), len(b.Outcomes))
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			tb.Fatalf("%s: outcome[%d] diverges:\n  a=%+v\n  b=%+v", label, i, a.Outcomes[i], b.Outcomes[i])
		}
	}
	for i := range a.SlotQuality {
		if a.SlotQuality[i] != b.SlotQuality[i] {
			tb.Fatalf("%s: slot quality[%d] %v vs %v", label, i, a.SlotQuality[i], b.SlotQuality[i])
		}
	}
	tb.Fatalf("%s: reports diverge outside outcomes/slot quality:\n  a=%+v\n  b=%+v", label, a, b)
}

func TestParallelForCoversAll(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		for _, n := range []int{0, 1, 7, 8, 9, 100, 1000} {
			hits := make([]int32, n)
			parallelFor(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

// TestSimShardedMatchesSerial is the build-phase differential: the same
// churny, chaos-injected workload must produce a bit-identical RunReport
// whether the build runs serially or sharded across goroutines (including
// a worker count that does not divide the shard size evenly).
func TestSimShardedMatchesSerial(t *testing.T) {
	w := churnWorkload(t, 2000, 900, 41)
	chaosProfile := campaignChaos()
	serial := mustSimulate(t, w, SimConfig{Workers: 1, Chaos: chaosProfile})
	for _, workers := range []int{4, 13} {
		sharded := mustSimulate(t, w, SimConfig{Workers: workers, Chaos: chaosProfile})
		diffReports(t, "sharded-vs-serial", serial, sharded)
	}
}

// TestSimWarmStartMatchesCold is the solver differential at the campaign
// level: swapping the cold solver for the warm-start engine must not move
// a single bit of the report, across churn, chaos, and horizon-long
// sessions alike.
func TestSimWarmStartMatchesCold(t *testing.T) {
	w := churnWorkload(t, 1500, 600, 97)
	chaosProfile := campaignChaos()
	cold := mustSimulate(t, w, SimConfig{Chaos: chaosProfile})
	warm := mustSimulate(t, w, SimConfig{WarmStart: true, Chaos: chaosProfile})
	diffReports(t, "warm-vs-cold", cold, warm)
	if cold.Algorithm != warm.Algorithm {
		t.Fatalf("algorithm label changed: %q vs %q", cold.Algorithm, warm.Algorithm)
	}
}

// TestCampaign100KSessionsBitIdentical is the acceptance campaign: one
// hundred thousand sessions through the virtual-time engine, run twice
// (serial build, then sharded), must be bit-for-bit identical.
func TestCampaign100KSessionsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-session campaign skipped in -short")
	}
	w := churnWorkload(t, 100_000, 3000, 20260808)
	if len(w.Sessions) < 100_000 {
		t.Fatalf("campaign underfilled: %d sessions", len(w.Sessions))
	}
	first := mustSimulate(t, w, SimConfig{Workers: 1, WarmStart: true})
	second := mustSimulate(t, w, SimConfig{Workers: 4, WarmStart: true})
	diffReports(t, "campaign-100k", first, second)
	if first.Completed != first.Spawned {
		t.Fatalf("campaign lost sessions: spawned %d completed %d", first.Spawned, first.Completed)
	}
}
