package load

import (
	"fmt"
	"strings"
)

// ProbeFunc runs one load probe with n concurrent sessions and returns the
// aggregate deadline-miss rate it measured.
type ProbeFunc func(n int) (missRate float64, err error)

// ProbeSample is one capacity-search measurement.
type ProbeSample struct {
	Sessions int
	MissRate float64
	OK       bool // miss rate at or below target
}

// CapacityResult is the outcome of a capacity search.
type CapacityResult struct {
	// MaxSessions is the largest probed session count whose miss rate
	// stayed at or below Target (0 if even Lo failed).
	MaxSessions int
	Target      float64
	Probes      []ProbeSample
	// CappedAtHi reports that every probe up to the search ceiling passed,
	// so the true capacity lies at or above MaxSessions.
	CappedAtHi bool
}

// Format renders the probe ladder and the verdict.
func (r *CapacityResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# capacity search (deadline-miss target %.4f)\n", r.Target)
	fmt.Fprintf(&b, "%10s %12s %6s\n", "sessions", "miss_rate", "ok")
	for _, p := range r.Probes {
		fmt.Fprintf(&b, "%10d %12.4f %6v\n", p.Sessions, p.MissRate, p.OK)
	}
	switch {
	case r.MaxSessions == 0:
		fmt.Fprintf(&b, "capacity: below the search floor (miss rate above target at the smallest probe)\n")
	case r.CappedAtHi:
		fmt.Fprintf(&b, "capacity: >= %d sessions (search ceiling reached)\n", r.MaxSessions)
	default:
		fmt.Fprintf(&b, "capacity: %d concurrent sessions\n", r.MaxSessions)
	}
	return b.String()
}

// FindCapacity binary-searches the maximum concurrent session count whose
// deadline-miss rate stays at or below target. It first doubles from lo
// until a probe fails (or hi is reached), then bisects the bracket. Probe
// results are assumed monotone in n up to noise; the search always
// terminates in O(log(hi/lo)) probes.
func FindCapacity(lo, hi int, target float64, probe ProbeFunc) (*CapacityResult, error) {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	res := &CapacityResult{Target: target}
	run := func(n int) (bool, error) {
		miss, err := probe(n)
		if err != nil {
			return false, fmt.Errorf("load: probe at %d sessions: %w", n, err)
		}
		ok := miss <= target
		res.Probes = append(res.Probes, ProbeSample{Sessions: n, MissRate: miss, OK: ok})
		return ok, nil
	}

	ok, err := run(lo)
	if err != nil {
		return nil, err
	}
	if !ok {
		return res, nil // MaxSessions stays 0: not sustainable even at lo
	}
	good, bad := lo, 0
	for n := lo; n < hi; {
		n *= 2
		if n > hi {
			n = hi
		}
		ok, err := run(n)
		if err != nil {
			return nil, err
		}
		if ok {
			good = n
		} else {
			bad = n
			break
		}
	}
	if bad == 0 {
		res.MaxSessions = good
		res.CappedAtHi = true
		return res, nil
	}
	for bad-good > 1 {
		mid := good + (bad-good)/2
		ok, err := run(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			good = mid
		} else {
			bad = mid
		}
	}
	res.MaxSessions = good
	return res, nil
}
