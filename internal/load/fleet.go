package load

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/fleet/coord"
	"repro/internal/metrics"
	"repro/internal/motion"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/tiles"
)

// FleetSimConfig parametrizes the deterministic fleet engine: N virtual
// shards behind the fleet router, sharing the GLOBAL budget Sim.BudgetMbps.
type FleetSimConfig struct {
	// Sim carries the per-shard engine knobs. Sim.BudgetMbps is the
	// fleet-wide budget B(t); the rebalancer splits it across shards.
	// Sim.Chaos may carry shard_kill/shard_drain faults — they drive the
	// fleet layer; its session-scoped faults apply per session as in
	// Simulate.
	Sim SimConfig
	// Shards is the virtual shard count (default 3).
	Shards int
	// Zones is the locality-zone count; shard i sits in zone i%Zones and
	// session n in zone n%Zones (default Shards).
	Zones int
	// Scorer names the placement policy (fleet.ScorerByName; default
	// least-loaded).
	Scorer string
	// Rebalance tunes the periodic budget re-split.
	Rebalance fleet.RebalanceConfig
	// MigrationOutageSlots is the per-session blackout while a session
	// hands off between shards: the client redials, so these slots are
	// charged as forced deadline misses (default 2; negative = none). This
	// is the "degrades" in degrades-not-drops.
	MigrationOutageSlots int
	// Recorder, when non-nil, captures every placement decision.
	Recorder *obs.PlacementRecorder
	// Health, when non-nil, receives per-shard and fleet-aggregate series
	// every slot (fleet_shard_* keyed by shard, fleet_* fleet-wide). The
	// store is deterministic on the slot clock: same workload + config =
	// bit-identical export.
	Health *tsdb.Store
	// Evac turns on the SLO-pressure evacuation loop: shards whose rolling
	// page-fraction window stays above the enter threshold hand sessions to
	// the rest of the fleet in cooldown-spaced batches. Needs a pressure
	// history, so an internal health store is created when Health is nil.
	Evac fleet.EvacConfig
	// Coordinators is the coordinator replica count for the replicated
	// owner map (default 1 — a single replica, the zero-cost path,
	// byte-identical to the pre-replication engine; 2f+1 replicas tolerate
	// f crashes, with ownership mutations stalling at most Coord.LeaseSlots
	// per leader loss). -1 disables the cluster entirely — the legacy
	// direct-ownership path, kept as the bench control.
	Coordinators int
	// Coord tunes the replicated coordinator beyond the replica count
	// (lease length, snapshot cadence). Coordinators overrides
	// Coord.Replicas.
	Coord coord.Config
}

func (c FleetSimConfig) withDefaults() FleetSimConfig {
	c.Sim = c.Sim.withDefaults()
	if c.Shards <= 0 {
		c.Shards = 3
	}
	if c.Zones <= 0 {
		c.Zones = c.Shards
	}
	if c.MigrationOutageSlots == 0 {
		c.MigrationOutageSlots = 2
	}
	if c.MigrationOutageSlots < 0 {
		c.MigrationOutageSlots = 0
	}
	if c.Coordinators == 0 {
		c.Coordinators = 1
	}
	return c
}

// ShardOutcome is one shard's end-of-run accounting.
type ShardOutcome struct {
	Shard int `json:"shard"`
	Zone  int `json:"zone"`
	// Placed counts arrival placements; MigratedIn/Out count sessions
	// adopted from / handed to other shards.
	Placed      int `json:"placed"`
	MigratedIn  int `json:"migrated_in"`
	MigratedOut int `json:"migrated_out"`
	// KilledSlot/DrainSlot are the slots the shard died / began draining
	// (-1 when it never did).
	KilledSlot int `json:"killed_slot"`
	DrainSlot  int `json:"drain_slot"`
	// PeakSessions is the shard's maximum concurrent session count.
	PeakSessions int `json:"peak_sessions"`
	// FinalBudgetMbps is the shard's budget share at the horizon.
	FinalBudgetMbps float64 `json:"final_budget_mbps"`
}

// FleetReport aggregates one fleet-sim run: the fleet-wide RunReport plus
// the router/rebalancer accounting the single-server report has no place
// for.
type FleetReport struct {
	RunReport
	Scorer     string         `json:"scorer"`
	Shards     []ShardOutcome `json:"shards"`
	Placements int            `json:"placements"`
	// PlacementsFailed counts arrivals no shard could accept (dropped).
	PlacementsFailed int `json:"placements_failed"`
	Migrations       int `json:"migrations"`
	Rebalances       int `json:"rebalances"`
	// OutageSlots counts session-slots charged as forced misses during
	// migration blackouts.
	OutageSlots int `json:"outage_slots"`
	// Evacuations counts sessions migrated by the SLO-pressure loop;
	// EvacBatches how many cooldown-spaced batches fired.
	Evacuations int `json:"evacuations,omitempty"`
	EvacBatches int `json:"evac_batches,omitempty"`
	// Coord summarizes the replicated coordinator's run; nil when the
	// cluster was disabled (Coordinators -1).
	Coord *CoordOutcome `json:"coord,omitempty"`
}

// CoordOutcome is the replicated coordinator's end-of-run accounting: the
// leadership history, the log frontier counters, and the convergence
// verdict the acceptance campaigns assert on.
type CoordOutcome struct {
	Replicas         int    `json:"replicas"`
	Term             uint64 `json:"term"`
	Elections        uint64 `json:"elections"`
	Commits          uint64 `json:"commits"`
	Rejected         uint64 `json:"rejected"`
	SnapshotInstalls uint64 `json:"snapshot_installs"`
	// LeaderlessSlots counts slots during which the cluster could not
	// accept ownership mutations (dead leader's lease draining, or quorum
	// lost) — the control-plane blackout the election timeout bounds.
	LeaderlessSlots int `json:"leaderless_slots"`
	// Converged reports whether every alive replica finished with an
	// identical applied owner map — the single-owner invariant.
	Converged bool `json:"converged"`
}

// FormatFleet renders the fleet addendum under the standard report.
func (r *FleetReport) FormatFleet() string {
	var b strings.Builder
	b.WriteString(r.RunReport.Format())
	fmt.Fprintf(&b, "fleet: scorer %s, placements %d (failed %d), migrations %d, rebalances %d, outage session-slots %d\n",
		r.Scorer, r.Placements, r.PlacementsFailed, r.Migrations, r.Rebalances, r.OutageSlots)
	if c := r.Coord; c != nil {
		fmt.Fprintf(&b, "coord: %d replica(s), term %d, elections %d, commits %d, rejected %d, snapshots %d, leaderless slots %d, converged %v\n",
			c.Replicas, c.Term, c.Elections, c.Commits, c.Rejected, c.SnapshotInstalls, c.LeaderlessSlots, c.Converged)
	}
	fmt.Fprintf(&b, "%-6s %5s %6s %7s %7s %7s %6s %6s %10s\n",
		"shard", "zone", "placed", "mig-in", "mig-out", "peak", "killed", "drain", "budget")
	for _, s := range r.Shards {
		fmt.Fprintf(&b, "%-6d %5d %6d %7d %7d %7d %6d %6d %10.1f\n",
			s.Shard, s.Zone, s.Placed, s.MigratedIn, s.MigratedOut,
			s.PeakSessions, s.KilledSlot, s.DrainSlot, s.FinalBudgetMbps)
	}
	return b.String()
}

// fleetSession wraps a simSession with its fleet coordinates.
type fleetSession struct {
	simSession
	zone        int
	shard       int
	outageUntil int // slot before which the session is mid-handoff
	// pendingFlip marks a session whose ownership flip could not commit —
	// the coordinator was leaderless when its shard failed. The session is
	// blacked out (exported but not adopted) until the survivors elect and
	// the flip commits through the log; pendingReason carries the
	// placement reason to record at commit time.
	pendingFlip   bool
	pendingReason string
}

// SimulateFleet replays the workload through N virtual shards behind the
// fleet decision core, in virtual time: scored placement at arrival,
// per-shard allocation against the rebalanced budget split, and — when the
// chaos profile kills or drains a shard — live migration of its sessions
// to the survivors, each paying a short forced-miss outage instead of being
// dropped. Same workload + config is bit-identical, like Simulate.
func SimulateFleet(w *Workload, cfg FleetSimConfig) (*FleetReport, error) {
	cfg = cfg.withDefaults()
	if len(w.Sessions) == 0 {
		return nil, fmt.Errorf("load: empty workload")
	}
	sim := &cfg.Sim
	if m := sim.Chaos.MaxShard(); m >= cfg.Shards {
		return nil, fmt.Errorf("load: chaos profile targets shard %d but the fleet has %d shards", m, cfg.Shards)
	}

	// Replicated coordinator: every ownership mutation (place, flip,
	// forget, evac batch, budget split) commits through its log. A single
	// replica is the zero-cost default — proposals apply directly, no
	// allocation, bit-identical to the pre-replication engine. -1 disables
	// the cluster entirely (the bench control).
	var cluster *coord.Cluster
	if cfg.Coordinators >= 1 {
		ccfg := cfg.Coord
		ccfg.Replicas = cfg.Coordinators
		cluster = coord.New(ccfg)
	}
	coordFaults := sim.Chaos.CoordFaults()
	if m := sim.Chaos.MaxReplica(); m >= 0 {
		if cluster == nil {
			return nil, fmt.Errorf("load: chaos profile carries coordinator faults but the cluster is disabled (Coordinators %d)", cfg.Coordinators)
		}
		if m >= cfg.Coordinators {
			return nil, fmt.Errorf("load: chaos profile targets coordinator replica %d but the cluster has %d", m, cfg.Coordinators)
		}
	}
	coordUp := func() bool { return cluster == nil || cluster.Available() }
	horizon := w.Cfg.HorizonSlots
	sps := w.Cfg.SlotsPerSecond
	if sps <= 0 {
		sps = 60
	}
	slotMs := 1000 / sps
	deadlineMs := float64(sim.DeadlineSlots) * slotMs
	sizeModel := tiles.NewSizeModel(sim.SizeModelSeed)
	qoeParams := metrics.QoEParams{Alpha: sim.Params.Alpha, Beta: sim.Params.Beta}
	lm := newLoadMetrics(sim.Metrics)

	// One allocator instance per shard: some allocators keep state, and a
	// real fleet runs one per server.
	allocs := make([]core.Allocator, cfg.Shards)
	for i := range allocs {
		allocs[i] = sim.NewAllocator()
	}
	scorer, err := fleet.ScorerByName(cfg.Scorer)
	if err != nil {
		return nil, err
	}
	router := fleet.NewRouter(scorer, cfg.Recorder)
	rb := fleet.NewRebalancer(cfg.Rebalance, cfg.Shards)

	// Health plane: per-shard and fleet-aggregate series on the slot clock.
	// The evacuation loop reads its pressure signal from the page-frac
	// series, so it gets a private store when the caller did not ask for one.
	evac := fleet.NewEvacuator(cfg.Evac, cfg.Shards)
	health := cfg.Health
	if health == nil && evac != nil {
		health = tsdb.New(tsdb.Options{})
	}
	type shardHealth struct {
		sessions, budget, demand, pageFrac, quality *tsdb.Series
	}
	var sh []shardHealth
	var fleetQuality, fleetSessions, fleetEvacTotal *tsdb.Series
	if health != nil {
		sh = make([]shardHealth, cfg.Shards)
		for i := range sh {
			sh[i] = shardHealth{
				sessions: health.ShardSeries("fleet_shard_sessions", tsdb.Gauge, i),
				budget:   health.ShardSeries("fleet_shard_budget_mbps", tsdb.Gauge, i),
				demand:   health.ShardSeries("fleet_shard_demand_mbps", tsdb.Gauge, i),
				pageFrac: health.ShardSeries("fleet_shard_page_frac", tsdb.Gauge, i),
				quality:  health.ShardSeries("fleet_shard_slot_quality", tsdb.Gauge, i),
			}
		}
		fleetQuality = health.Series("fleet_slot_quality", tsdb.Gauge)
		fleetSessions = health.Series("fleet_active_sessions", tsdb.Gauge)
		fleetEvacTotal = health.Series("fleet_evacuations_total", tsdb.Counter)
	}

	byArrive := make(map[int][]SessionSpec)
	for _, s := range w.Sessions {
		byArrive[s.ArriveSlot] = append(byArrive[s.ArriveSlot], s)
	}

	report := &FleetReport{
		RunReport: RunReport{
			Mode:           "fleet-sim",
			Algorithm:      sim.AllocName,
			HorizonSlots:   horizon,
			Spawned:        len(w.Sessions),
			PeakConcurrent: w.PeakConcurrent(),
		},
		Scorer: router.ScorerName(),
		Shards: make([]ShardOutcome, cfg.Shards),
	}
	for i := range report.Shards {
		report.Shards[i] = ShardOutcome{
			Shard: i, Zone: i % cfg.Zones, KilledSlot: -1, DrainSlot: -1,
			FinalBudgetMbps: sim.BudgetMbps / float64(cfg.Shards),
		}
	}

	// Mutable shard state.
	dead := make([]bool, cfg.Shards)
	draining := make([]bool, cfg.Shards)
	budget := make([]float64, cfg.Shards)
	demand := make([]float64, cfg.Shards)
	for i := range budget {
		budget[i] = sim.BudgetMbps / float64(cfg.Shards)
	}

	var active []*fleetSession
	serverInj := chaos.NewServerInjector(sim.Chaos)
	shardFaults := sim.Chaos.ShardFaults()
	report.SlotQuality = make([]float64, 0, horizon)

	var regretRef core.Allocator
	if sim.Recorder.Enabled() && sim.RegretRef {
		regretRef = core.DPOptimal{Resolution: sim.RegretResolution}
	}

	// pendingForgets queues departures that arrived while the coordinator
	// was leaderless; they replay once a leader is back. A stale binding is
	// never load-bearing, so deferral is safe.
	var pendingForgets []uint32
	coordLeaderless := 0

	finish := func(s *fleetSession) {
		sim.SLO.Retire(s.spec.ID)
		sim.Breaker.Retire(s.spec.ID)
		evac.Forget(s.spec.ID)
		if cluster != nil {
			if err := cluster.Propose(coord.Op{Kind: coord.OpForget, Session: s.spec.ID}); err != nil {
				pendingForgets = append(pendingForgets, s.spec.ID)
			}
		}
		out := SessionOutcome{
			ID:       s.spec.ID,
			Slots:    s.acc.Slots(),
			QoE:      s.acc.QoE(),
			Quality:  s.acc.AvgQuality(),
			DelayMs:  s.acc.AvgDelay(),
			Variance: s.acc.Variance(),
			Coverage: s.acc.CoverageRate(),
		}
		if s.served > 0 {
			out.MissFrac = float64(s.missed) / float64(s.served)
		}
		report.Outcomes = append(report.Outcomes, out)
		report.Completed++
		lm.observeOutcome(out)
	}

	// shardStates builds the router's view: budgets and demand from the
	// fleet layer, sessions and page fractions from the active set, all in
	// shard-index order.
	shardStates := func() []fleet.ShardState {
		counts := make([]int, cfg.Shards)
		paging := make([]int, cfg.Shards)
		for _, s := range active {
			counts[s.shard]++
			if sim.SLO.Enabled() && sim.SLO.State(s.spec.ID) == obs.SLOStatePage {
				paging[s.shard]++
			}
		}
		out := make([]fleet.ShardState, cfg.Shards)
		for i := range out {
			out[i] = fleet.ShardState{
				ID: i, Zone: i % cfg.Zones,
				Alive: !dead[i], Draining: draining[i],
				Sessions: counts[i], BudgetMbps: budget[i], DemandMbps: demand[i],
			}
			if counts[i] > 0 {
				out[i].PageFrac = float64(paging[i]) / float64(counts[i])
			}
		}
		return out
	}

	// applyShares re-splits the global budget over accepting shards. The
	// split commits through the coordinator log first: a leaderless cluster
	// postpones the re-split (budgets ride unchanged until the next due
	// tick), so every replica replays the same share history.
	applyShares := func() {
		accepting := make([]bool, cfg.Shards)
		for i := range accepting {
			accepting[i] = !dead[i] && !draining[i]
		}
		shares := rb.Shares(sim.BudgetMbps, accepting)
		if cluster != nil {
			if err := cluster.Propose(coord.Op{Kind: coord.OpBudgetSplit, Shares: shares}); err != nil {
				return
			}
		}
		for i, share := range shares {
			if accepting[i] {
				budget[i] = share
			} else {
				budget[i] = 0
			}
		}
	}

	// commitFlip routes one exported session at commit time and flips its
	// ownership through the coordinator log; the session then pays the
	// migration outage. Returns false when there is nowhere to go or the
	// flip could not commit.
	commitFlip := func(slot int, s *fleetSession, reason string) bool {
		from := s.shard
		sess := fleet.SessionInfo{ID: s.spec.ID, Zone: s.zone}
		to := router.Place(slot, sess, shardStates(), reason, from)
		if to < 0 {
			return false // nowhere to go: the session rides the dead shard (0 quality)
		}
		if cluster != nil {
			if err := cluster.Propose(coord.Op{Kind: coord.OpFlip, Session: s.spec.ID, Shard: to, From: from}); err != nil {
				return false
			}
		}
		s.shard = to
		s.outageUntil = slot + cfg.MigrationOutageSlots
		s.pendingFlip = false
		report.Shards[from].MigratedOut++
		report.Shards[to].MigratedIn++
		report.Migrations++
		return true
	}

	// migrateShard hands every session of a failing shard to the best
	// survivor, in arrival order; each migrated session pays the outage.
	// When the coordinator is leaderless (the leader died between the
	// export and the flip) the session is queued instead: exported but not
	// adopted, blacked out until the survivors elect and the flip commits —
	// degraded for the election window, never dropped, never double-owned.
	migrateShard := func(slot, from int, reason string) {
		for _, s := range active {
			if s.shard != from || s.pendingFlip {
				continue
			}
			if !coordUp() {
				s.pendingFlip = true
				s.pendingReason = reason
				continue
			}
			commitFlip(slot, s, reason)
		}
	}

	users := make([]core.UserInput, 0, 64)
	type plan struct {
		sess    *fleetSession
		rates   []float64
		cov     bool
		cap_    float64
		dropped bool
	}
	plans := make([]plan, 0, 64)
	degrade := make([]float64, cfg.Shards)
	shardQualSum := make([]float64, cfg.Shards)
	shardQualCnt := make([]int, cfg.Shards)
	var evacCands []*fleetSession

	for slot := 0; slot < horizon; slot++ {
		// Coordinator faults and the cluster tick come first: a leader
		// killed this slot is already dead when the shard faults below try
		// to flip ownership, and an election lands before any retry. The
		// tick also drains leases and heals laggards.
		if cluster != nil {
			for _, f := range coordFaults {
				switch f.Kind {
				case chaos.FaultCoordKill:
					if f.StartSlot == slot {
						cluster.Kill(f.Replica)
					}
					if f.DurationSlots > 0 && f.StartSlot+f.DurationSlots == slot {
						cluster.Restart(f.Replica)
					}
				case chaos.FaultCoordPartition:
					if f.StartSlot == slot {
						cluster.Partition(f.Replica, int64(slot+f.DurationSlots))
					}
				}
			}
			cluster.Tick(int64(slot))
			if !cluster.Available() {
				coordLeaderless++
			}
		}

		// Shard faults: kill and drain windows open (and drains close) on
		// slot boundaries, before arrivals see the shard states. Degrade
		// windows recompute each slot — a browned-out shard's sessions see
		// their link capacity multiplied by the fault factor.
		for i := range degrade {
			degrade[i] = 1
		}
		for _, f := range shardFaults {
			if f.Shard >= cfg.Shards {
				continue
			}
			switch f.Kind {
			case chaos.FaultShardDegrade:
				if slot >= f.StartSlot && (f.DurationSlots == 0 || slot < f.StartSlot+f.DurationSlots) {
					degrade[f.Shard] *= f.Factor
				}
			case chaos.FaultShardKill:
				if f.StartSlot == slot && !dead[f.Shard] {
					dead[f.Shard] = true
					report.Shards[f.Shard].KilledSlot = slot
					migrateShard(slot, f.Shard, obs.PlaceShardKill)
					applyShares()
				}
			case chaos.FaultShardDrain:
				if f.StartSlot == slot && !draining[f.Shard] && !dead[f.Shard] {
					draining[f.Shard] = true
					report.Shards[f.Shard].DrainSlot = slot
					migrateShard(slot, f.Shard, obs.PlaceShardDrain)
					applyShares()
				}
				if f.DurationSlots > 0 && f.StartSlot+f.DurationSlots == slot && draining[f.Shard] {
					draining[f.Shard] = false // drained shard rejoins empty
					applyShares()
				}
			}
		}

		// Pending replays: departures and flips rejected during a
		// leaderless window commit now, in arrival order — ownership
		// converges the first slot a leader is back, and each re-placed
		// session starts its bounded migration outage.
		if cluster != nil && cluster.Available() {
			for len(pendingForgets) > 0 {
				if err := cluster.Propose(coord.Op{Kind: coord.OpForget, Session: pendingForgets[0]}); err != nil {
					break
				}
				pendingForgets = pendingForgets[1:]
			}
			rerouted := false
			for _, s := range active {
				if !s.pendingFlip {
					continue
				}
				if commitFlip(slot, s, s.pendingReason) {
					rerouted = true
				}
			}
			if rerouted {
				applyShares()
			}
		}

		// Arrivals route through the scorer.
		for _, spec := range byArrive[slot] {
			zone := int(spec.ID) % cfg.Zones
			if !coordUp() {
				// Leaderless cluster: the arrival cannot be owned, so it
				// fails fast like Live.Place — the caller-visible contract.
				report.Failed++
				report.PlacementsFailed++
				continue
			}
			to := router.Place(slot, fleet.SessionInfo{ID: spec.ID, Zone: zone},
				shardStates(), obs.PlaceArrival, -1)
			if to < 0 {
				report.Failed++
				report.PlacementsFailed++
				continue
			}
			if cluster != nil {
				if err := cluster.Propose(coord.Op{Kind: coord.OpPlace, Session: spec.ID, Shard: to}); err != nil {
					report.Failed++
					report.PlacementsFailed++
					continue
				}
			}
			report.Placements++
			report.Shards[to].Placed++
			active = append(active, &fleetSession{
				simSession: simSession{
					spec:  spec,
					trace: w.MotionTrace(spec, 0),
					caps:  w.CapSlots(spec),
					pred:  motion.NewPredictor(sim.PredictorWindow),
					acc:   metrics.NewUserQoE(qoeParams),
					inj:   chaos.NewInjector(sim.Chaos, spec.ID),
				},
				zone:  zone,
				shard: to,
			})
		}
		// Departures.
		next := active[:0]
		for _, s := range active {
			if slot >= s.spec.DepartSlot {
				finish(s)
				continue
			}
			next = append(next, s)
		}
		active = next
		if len(active) == 0 {
			report.SlotQuality = append(report.SlotQuality, 0)
			sim.Health.Sample(int64(slot))
			continue
		}

		serverInj.Advance(slot)
		stallMs := float64(serverInj.StallFor()+serverInj.AckDelay()) / float64(time.Millisecond)

		// Advance every session's pose/chaos state once, then solve each
		// shard's slot problem over its own sessions against its own
		// budget share.
		qualitySum := 0.0
		counted := 0
		for i := range report.Shards {
			shardQualSum[i] = 0
			shardQualCnt[i] = 0
		}
		for i := range report.Shards {
			if c := shardSessionCount(active, i); c > report.Shards[i].PeakSessions {
				report.Shards[i].PeakSessions = c
			}
		}
		for shard := 0; shard < cfg.Shards; shard++ {
			if dead[shard] {
				demand[shard] = 0
				rb.Observe(shard, 0)
				continue // stranded sessions black out in the outage pass
			}
			users = users[:0]
			plans = plans[:0]
			shardDemand := 0.0
			for _, s := range active {
				if s.shard != shard || slot < s.outageUntil || s.pendingFlip {
					continue
				}
				local := slot - s.spec.ArriveSlot
				actual := s.trace[local]
				predicted := s.pred.Predict()
				if local <= sim.PredictorWindow {
					predicted = actual
				}
				cell := tiles.CellFor(predicted.Pos)
				sel := tiles.ForView(predicted, sim.Coverage.FoV, sim.Coverage.MarginDeg)
				rates := sizeModel.RateTable(cell, sel)
				cap_ := s.caps[local]
				s.inj.Advance(slot)
				cap_ *= s.inj.SimCapFactor()
				cap_ *= degrade[shard]
				// Demand proxy: what the session could usefully take this
				// slot — its top ladder rate, clipped by its link.
				top := rates[len(rates)-1]
				if cap_ < top {
					top = cap_
				}
				shardDemand += top
				users = append(users, core.UserInput{
					Rate:  rates,
					Delay: netem.DelayTableMs(rates, cap_, slotMs),
					Delta: s.delta(),
					MeanQ: s.meanQ(),
					Cap:   cap_,
				})
				plans = append(plans, plan{
					sess: s, rates: rates,
					cov:  sim.Coverage.Covered(predicted, actual),
					cap_: cap_, dropped: s.inj.Drop(),
				})
				s.pred.Observe(actual)
			}
			demand[shard] = shardDemand
			rb.Observe(shard, shardDemand)
			if len(users) == 0 {
				continue
			}

			problem := &core.SlotProblem{T: slot + 1, Budget: budget[shard], Users: users}
			var allocation core.Allocation
			var slotTr *core.SlotTrace
			if sim.Recorder.Enabled() {
				if ta, ok := allocs[shard].(core.TracingAllocator); ok {
					slotTr = &core.SlotTrace{TopK: sim.CounterfactualK}
					allocation = ta.AllocateTraced(sim.Params, problem, slotTr)
				}
			}
			if slotTr == nil {
				allocation = allocs[shard].Allocate(sim.Params, problem)
			}
			if sim.Recorder.Enabled() {
				ids := make([]uint32, len(plans))
				for i := range plans {
					ids[i] = plans[i].sess.spec.ID
				}
				recordSimSlot(sim, slot, problem, allocation, slotTr, ids, regretRef)
			}

			overloadMs := 0.0
			if allocation.Rate > budget[shard] && budget[shard] > 0 {
				overloadMs = (allocation.Rate/budget[shard] - 1) * slotMs
			}
			for i, p := range plans {
				q := allocation.Levels[i]
				if bcap := sim.Breaker.Cap(p.sess.spec.ID); bcap > 0 && q > bcap {
					q = bcap
					report.DegradedSlots++
				}
				rate := p.rates[q-1]
				delay := netem.DelayMs(rate, p.cap_, slotMs) + overloadMs + stallMs
				covered := p.cov
				missed := p.dropped || delay > deadlineMs
				if missed {
					covered = false
					delay = deadlineMs
				}
				s := p.sess
				s.served++
				if missed {
					s.missed++
				}
				s.t++
				if covered {
					s.covered++
					s.sumViewedQ += float64(q)
				}
				s.acc.Observe(q, covered, delay)
				s.acc.ObserveFrame(!missed)

				quality := float64(q)
				if missed {
					quality = 0
				}
				qualitySum += quality
				counted++
				shardQualSum[shard] += quality
				shardQualCnt[shard]++
				sim.SLO.ObserveSlot(s.spec.ID, !missed, quality)
				sim.Breaker.Observe(s.spec.ID, sim.SLO.State(s.spec.ID))
			}
		}

		// Sessions mid-handoff (or stranded on a dead shard, or exported
		// with their flip waiting on a coordinator election) are blacked
		// out this slot: the frame is a forced miss, charged like a
		// deadline miss — degraded, not dropped.
		for _, s := range active {
			inOutage := slot < s.outageUntil || s.pendingFlip
			stranded := dead[s.shard]
			if !inOutage && !stranded {
				continue
			}
			local := slot - s.spec.ArriveSlot
			s.pred.Observe(s.trace[local]) // the head keeps moving
			s.served++
			s.missed++
			s.t++
			s.acc.Observe(1, false, deadlineMs)
			s.acc.ObserveFrame(false)
			counted++
			shardQualCnt[s.shard]++
			report.OutageSlots++
			sim.SLO.ObserveSlot(s.spec.ID, false, 0)
			sim.Breaker.Observe(s.spec.ID, sim.SLO.State(s.spec.ID))
		}
		if counted > 0 {
			report.SlotQuality = append(report.SlotQuality, qualitySum/float64(counted))
		} else {
			report.SlotQuality = append(report.SlotQuality, 0)
		}

		// Health plane: fold this slot's shard states into the store. The
		// evacuation loop below reads the page-frac window from here, so
		// sampling must precede it.
		if health != nil {
			states := shardStates()
			for i, st := range states {
				sh[i].sessions.Observe(int64(slot), float64(st.Sessions))
				sh[i].budget.Observe(int64(slot), st.BudgetMbps)
				sh[i].demand.Observe(int64(slot), st.DemandMbps)
				sh[i].pageFrac.Observe(int64(slot), st.PageFrac)
				q := 0.0
				if shardQualCnt[i] > 0 {
					q = shardQualSum[i] / float64(shardQualCnt[i])
				}
				sh[i].quality.Observe(int64(slot), q)
			}
			fleetSessions.Observe(int64(slot), float64(len(active)))
			fleetQuality.Observe(int64(slot), report.SlotQuality[len(report.SlotQuality)-1])
			fleetEvacTotal.Observe(int64(slot), float64(report.Evacuations))
		}

		// SLO-pressure evacuation: a shard whose ROLLING page-frac window
		// (never the instantaneous sample) crosses the enter threshold
		// hands a cooldown-spaced batch to the rest of the fleet. Paging
		// sessions move first — they are the ones a fresh shard can still
		// save — and no session moves twice inside one cooldown window.
		if evac != nil {
			for shard := 0; shard < cfg.Shards; shard++ {
				if dead[shard] || draining[shard] {
					continue
				}
				if !coordUp() {
					// No leader, no batch: the controller state is left
					// untouched so the same batch fires once one is back.
					continue
				}
				w := sh[shard].pageFrac.Stats(evac.Config().WindowSlots)
				pressure := 0.0
				if w.Count > 0 {
					pressure = w.Mean()
				}
				if !evac.Update(shard, int64(slot), pressure, w.Count) {
					continue
				}
				evacCands = evacCands[:0]
				for _, s := range active {
					if s.shard != shard || slot < s.outageUntil {
						continue
					}
					if !evac.AllowSession(s.spec.ID, int64(slot)) {
						continue
					}
					evacCands = append(evacCands, s)
				}
				sort.SliceStable(evacCands, func(i, j int) bool {
					pi := sim.SLO.State(evacCands[i].spec.ID) == obs.SLOStatePage
					pj := sim.SLO.State(evacCands[j].spec.ID) == obs.SLOStatePage
					return pi && !pj
				})
				moved := 0
				var batchTo []int       // distinct targets, first-seen order
				var batchIDs [][]uint32 // sessions per target, move order
				for _, s := range evacCands {
					if moved >= evac.Config().BatchSessions {
						break
					}
					to := router.Place(slot, fleet.SessionInfo{ID: s.spec.ID, Zone: s.zone},
						shardStates(), obs.PlaceSLOPressure, shard)
					if to < 0 {
						break
					}
					s.shard = to
					s.outageUntil = slot + cfg.MigrationOutageSlots
					evac.NoteMigration(s.spec.ID, int64(slot))
					report.Shards[shard].MigratedOut++
					report.Shards[to].MigratedIn++
					report.Migrations++
					report.Evacuations++
					moved++
					if cluster != nil {
						found := false
						for i, t := range batchTo {
							if t == to {
								batchIDs[i] = append(batchIDs[i], s.spec.ID)
								found = true
								break
							}
						}
						if !found {
							batchTo = append(batchTo, to)
							batchIDs = append(batchIDs, []uint32{s.spec.ID})
						}
					}
				}
				// The batch commits through the log grouped by target —
				// availability was checked up front and nothing between
				// there and here can depose the leader, so these cannot
				// fail.
				for i, to := range batchTo {
					_ = cluster.Propose(coord.Op{
						Kind: coord.OpEvacBatch, Shard: to, From: shard, Batch: batchIDs[i],
					})
				}
			}
		}

		// Periodic rebalance from the demand EMAs.
		if rb.Due(slot) {
			applyShares()
		}
		// Registry/SLO sampling (Sim.Health) rides the same virtual clock
		// as the fleet series above.
		sim.Health.Sample(int64(slot))
	}
	for _, s := range active {
		finish(s)
	}
	sortOutcomes(report.Outcomes)
	report.Rebalances = rb.Rebalances()
	report.EvacBatches = evac.Batches()
	for i := range report.Shards {
		report.Shards[i].FinalBudgetMbps = budget[i]
	}
	if cluster != nil {
		report.Coord = &CoordOutcome{
			Replicas:         cluster.Replicas(),
			Term:             cluster.Term(),
			Elections:        cluster.Elections(),
			Commits:          cluster.Commits(),
			Rejected:         cluster.Rejected(),
			SnapshotInstalls: cluster.SnapshotInstalls(),
			LeaderlessSlots:  coordLeaderless,
			Converged:        cluster.Converged(),
		}
	}
	return report, nil
}

// shardSessionCount counts the active sessions owned by one shard.
func shardSessionCount(active []*fleetSession, shard int) int {
	n := 0
	for _, s := range active {
		if s.shard == shard {
			n++
		}
	}
	return n
}
