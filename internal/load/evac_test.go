package load

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
)

// degradeProfile browns out one shard: every session it owns sees its link
// capacity multiplied by factor while the window is open.
func degradeProfile(start, duration, shard int, factor float64) *chaos.Profile {
	return &chaos.Profile{
		Name: "test-shard-degrade",
		Seed: 42,
		Faults: []chaos.Fault{{
			Kind: chaos.FaultShardDegrade, StartSlot: start,
			DurationSlots: duration, Shard: shard, Factor: factor,
		}},
	}
}

// evacFixture is one SimulateFleet run with the evacuation loop armed: its
// own SLO monitor, placement recorder and health store (RawSlots sized to
// keep every slot of the 1200-slot horizon in the raw tier).
func evacFixture(t *testing.T, w *Workload, prof *chaos.Profile) (*FleetReport, *tsdb.Store, *obs.PlacementRecorder) {
	t.Helper()
	slo := obs.NewSLOMonitor(obs.SLOConfig{WindowSlots: 120, ShortWindowSlots: 30}, nil)
	rec := obs.NewPlacementRecorder(obs.PlacementRecorderOptions{RingSize: 256})
	health := tsdb.New(tsdb.Options{RawSlots: 1300})
	cfg := FleetSimConfig{
		Shards:   3,
		Recorder: rec,
		Health:   health,
		Evac: fleet.EvacConfig{
			Enabled:       true,
			WindowSlots:   60,
			EnterPressure: 0.30,
			ExitPressure:  0.10,
			CooldownSlots: 60,
			BatchSessions: 2,
		},
	}
	cfg.Sim.SLO = slo
	cfg.Sim.Chaos = prof
	rep, err := SimulateFleet(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep, health, rec
}

// TestFleetSLOPressureEvacuation is the PR's acceptance campaign for the
// ROADMAP "self-driving fleet" loop: a browned-out shard (capacity x0.05 for
// slots 300..900) must page its sessions, the coordinator must drain them
// off the shard from the ROLLING page-frac window, no session may move twice
// inside one cooldown window, the tail after the fault clears must recover
// to within 10% of the fault-free run, and the whole loop — health series
// included — must reproduce bit-for-bit per seed.
func TestFleetSLOPressureEvacuation(t *testing.T) {
	w := fleetWorkload(t)
	const (
		faultStart = 300
		faultEnd   = 900
		cooldown   = 60
	)

	baseline, _, _ := evacFixture(t, w, nil)
	got, health, rec := evacFixture(t, w, degradeProfile(faultStart, faultEnd-faultStart, 1, 0.05))

	// The fault-free run never pages, so the armed loop must never fire.
	if baseline.Evacuations != 0 || baseline.EvacBatches != 0 {
		t.Fatalf("fault-free run evacuated %d sessions in %d batches — loop fires without pressure",
			baseline.Evacuations, baseline.EvacBatches)
	}

	// Degrades, not drops: everyone completes.
	if got.Completed != got.Spawned || got.Failed != 0 {
		t.Fatalf("degrade run completed %d/%d (failed %d)", got.Completed, got.Spawned, got.Failed)
	}

	// The loop fired: shard 1's sessions were handed off under SLO pressure.
	if got.Evacuations == 0 || got.EvacBatches == 0 {
		t.Fatalf("no evacuations (%d) / batches (%d) despite a paging shard",
			got.Evacuations, got.EvacBatches)
	}
	if got.Shards[1].MigratedOut == 0 {
		t.Error("browned-out shard 1 migrated nothing out")
	}

	// Drained: the health plane's own series must show shard 1 reaching
	// zero sessions while the fault window is open.
	drained := false
	for _, snap := range health.Snapshot() {
		if snap.Name != "fleet_shard_sessions" || snap.Shard != 1 || snap.Tier != 1 {
			continue
		}
		for _, p := range snap.Points {
			if p.Slot >= faultStart && p.Slot < faultEnd && p.Value == 0 {
				drained = true
				break
			}
		}
	}
	if !drained {
		t.Error("fleet_shard_sessions[1] never reached 0 inside the fault window — shard not drained")
	}

	// No oscillation: per session, consecutive SLO-pressure migrations are
	// at least one cooldown window apart.
	lastMove := map[uint32]int{}
	evacRecords := 0
	for _, r := range rec.Recent(256) {
		if r.Reason != obs.PlaceSLOPressure {
			continue
		}
		evacRecords++
		if prev, ok := lastMove[r.Session]; ok && r.Slot-prev < cooldown {
			t.Errorf("session %d evacuated twice inside one cooldown window (slots %d and %d)",
				r.Session, prev, r.Slot)
		}
		lastMove[r.Session] = r.Slot
	}
	if evacRecords != got.Evacuations {
		t.Errorf("%d slo_pressure records, report says %d evacuations", evacRecords, got.Evacuations)
	}

	// Tail recovery after the fault clears.
	tailFrom := faultEnd + 50
	tail := got.MeanSlotQuality(tailFrom, len(got.SlotQuality))
	want := baseline.MeanSlotQuality(tailFrom, len(baseline.SlotQuality))
	if tail < 0.90*want {
		t.Errorf("post-fault tail quality %.3f < 90%% of fault-free %.3f", tail, want)
	}

	// Bit-for-bit determinism: the report deep-equals and the health-plane
	// JSONL export is byte-identical across two identical runs.
	again, health2, _ := evacFixture(t, w, degradeProfile(faultStart, faultEnd-faultStart, 1, 0.05))
	if !reflect.DeepEqual(got, again) {
		t.Error("two identical evacuation runs differ — engine is not deterministic")
	}
	var a, b bytes.Buffer
	if err := health.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := health2.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("health-plane JSONL export differs across identical runs")
	}
}
