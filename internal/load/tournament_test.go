package load

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/baseline"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/nettrace"
	"repro/internal/obs"
)

// tinyWorkload is the smallest workload that still exercises churn: sessions
// arrive and depart inside the horizon, so SessionIDs shift against user
// indices.
func tinyWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := Generate(Config{Shape: Poisson, RatePerSec: 1.5, Sessions: 6,
		HorizonSlots: 240, Seed: 11, MeanHoldSec: 2,
		NetKinds: []nettrace.Kind{nettrace.Broadband},
		Net:      nettrace.Config{MinMbps: 20, MaxMbps: 80, Seconds: 30}})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestSimulateRecordsDecisions: the sim engine's flight recorder captures one
// record per allocated slot with stable session IDs, a per-user objective
// decomposition that sums to the slot value, counterfactual alternatives, and
// DP-referenced regret; the JSONL stream round-trips through the shared
// tolerant reader.
func TestSimulateRecordsDecisions(t *testing.T) {
	w := tinyWorkload(t)
	var buf bytes.Buffer
	rec := obs.NewRecorder(obs.RecorderOptions{RingSize: 512, Writer: &buf})
	_, err := Simulate(w, SimConfig{
		Recorder:         rec,
		CounterfactualK:  3,
		RegretRef:        true,
		RegretResolution: 2,
		BudgetMbps:       60, // tight: forces budget rejections and regret
	})
	if err != nil {
		t.Fatal(err)
	}

	records, skipped, err := obs.ReadSlotRecords(&buf)
	if err != nil || skipped != 0 {
		t.Fatalf("reading decision stream: skipped=%d err=%v", skipped, err)
	}
	if len(records) == 0 || uint64(len(records)) != rec.Records() {
		t.Fatalf("stream has %d records, recorder saw %d", len(records), rec.Records())
	}

	sawAlternatives := false
	idsAtZero := map[uint32]bool{}
	for i := range records {
		r := &records[i]
		if r.Algorithm != "proposed" {
			t.Fatalf("slot %d: algorithm %q", r.Slot, r.Algorithm)
		}
		n := len(r.Levels)
		if n == 0 || len(r.SessionIDs) != n || len(r.UserValues) != n {
			t.Fatalf("slot %d: levels/ids/values lengths %d/%d/%d",
				r.Slot, n, len(r.SessionIDs), len(r.UserValues))
		}
		sum := 0.0
		for _, v := range r.UserValues {
			sum += v
		}
		if math.Abs(sum-r.Value) > 1e-9*(1+math.Abs(r.Value)) {
			t.Fatalf("slot %d: user values sum %v != value %v", r.Slot, sum, r.Value)
		}
		if !r.HasRegret || r.Regret < 0 || len(r.UserRegret) != n {
			t.Fatalf("slot %d: regret reference missing: %+v", r.Slot, r)
		}
		if len(r.Alternatives) > 0 {
			sawAlternatives = true
			if len(r.Alternatives) > 3 {
				t.Fatalf("slot %d: %d alternatives exceed K=3", r.Slot, len(r.Alternatives))
			}
		}
		idsAtZero[r.SessionIDs[0]] = true
	}
	if !sawAlternatives {
		t.Error("no slot recorded counterfactual alternatives under a tight budget")
	}
	if len(idsAtZero) < 2 {
		t.Error("index 0 always mapped to the same session: churn never exercised the ID mapping")
	}
}

// TestSimulateRecordingDoesNotPerturb: the recorded run must make the
// bit-identical decisions as the unrecorded run (observation must not change
// the experiment).
func TestSimulateRecordingDoesNotPerturb(t *testing.T) {
	w := tinyWorkload(t)
	plain, err := Simulate(w, SimConfig{BudgetMbps: 60})
	if err != nil {
		t.Fatal(err)
	}
	recorded, err := Simulate(w, SimConfig{BudgetMbps: 60,
		Recorder: obs.NewRecorder(obs.RecorderOptions{RingSize: 1}),
		CounterfactualK: 3, RegretRef: true, RegretResolution: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Outcomes, recorded.Outcomes) {
		t.Fatal("recording changed session outcomes")
	}
	if !reflect.DeepEqual(plain.SlotQuality, recorded.SlotQuality) {
		t.Fatal("recording changed the slot-quality series")
	}
}

// TestTournamentDeterministic: the same workload and config produce a
// byte-identical ranking table on every run, and the two Algorithm 1 engines
// (heap solver vs reference rescan) tie on every measured axis.
func TestTournamentDeterministic(t *testing.T) {
	w := tinyWorkload(t)
	cfg := TournamentConfig{Sim: SimConfig{BudgetMbps: 60, RegretResolution: 2}}
	r1, err := RunTournament(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunTournament(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f1, f2 := r1.Format(), r2.Format(); f1 != f2 {
		t.Fatalf("rankings differ between identical runs:\n%s\nvs\n%s", f1, f2)
	}
	if !reflect.DeepEqual(r1.Entries, r2.Entries) {
		t.Fatal("entries differ between identical runs")
	}

	byName := map[string]TournamentEntry{}
	for _, e := range r1.Entries {
		if e.Rank == 0 {
			t.Fatalf("unranked entry %+v", e)
		}
		byName[e.Name] = e
	}
	heap, scan := byName["dvgreedy"], byName["dvgreedy-scan"]
	if heap.Name == "" || scan.Name == "" {
		t.Fatalf("default roster incomplete: %v", r1.Format())
	}
	if heap.Fitness != scan.Fitness || heap.MeanQoE != scan.MeanQoE ||
		heap.TotalRegret != scan.TotalRegret {
		t.Errorf("heap solver and rescan engine diverged:\nheap %+v\nscan %+v", heap, scan)
	}
}

// TestTournamentRejectsBadRoster: duplicate or anonymous candidates fail
// loudly instead of silently merging rows.
func TestTournamentRejectsBadRoster(t *testing.T) {
	w := tinyWorkload(t)
	mk := func() core.Allocator { return core.DVGreedy{} }
	if _, err := RunTournament(w, TournamentConfig{
		Candidates: []Candidate{{Name: "a", NewAllocator: mk}, {Name: "a", NewAllocator: mk}},
		SkipRegret: true,
	}); err == nil {
		t.Error("duplicate candidate accepted")
	}
	if _, err := RunTournament(w, TournamentConfig{
		Candidates: []Candidate{{Name: "", NewAllocator: mk}},
		SkipRegret: true,
	}); err == nil {
		t.Error("anonymous candidate accepted")
	}
}

// TestBlackoutCampaignRegretAttribution is the acceptance bar: on the chaos
// blackout campaign, the attributor must pin at least 95% of the campaign's
// total regret to concrete (session, slot, reason) rows. The audited policy
// is the Firefly baseline — the proposed algorithm matches the DP reference
// on these instances (zero regret to attribute), which the tournament table
// reports directly; the attributor's job is explaining the policies that DO
// lose value.
func TestBlackoutCampaignRegretAttribution(t *testing.T) {
	w, err := Generate(Config{Shape: Steady, Sessions: 8,
		HorizonSlots: 600, Seed: 7,
		NetKinds: []nettrace.Kind{nettrace.Broadband},
		Net:      nettrace.Config{MinMbps: 30, MaxMbps: 100, Seconds: 60}})
	if err != nil {
		t.Fatal(err)
	}
	attr := obs.NewRegretAttributor(obs.RegretAttributorOptions{})
	_, err = Simulate(w, SimConfig{
		NewAllocator:     func() core.Allocator { return baseline.NewFirefly() },
		AllocName:        "firefly",
		BudgetMbps:       80, // tight enough that the budget constraint binds
		Recorder:         obs.NewRecorder(obs.RecorderOptions{RingSize: 1, Attributor: attr}),
		CounterfactualK:  3,
		RegretRef:        true,
		RegretResolution: 0.05,
		Chaos: &chaos.Profile{
			Name: "blackout-campaign",
			Seed: 99,
			Faults: []chaos.Fault{
				{Kind: chaos.FaultBlackout, StartSlot: 200, DurationSlots: 120},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := attr.Report()
	if rep.Slots != 600 || rep.RegretSlots != 600 {
		t.Fatalf("campaign recorded %d slots, %d with reference", rep.Slots, rep.RegretSlots)
	}
	if rep.TotalRegret <= 0 {
		t.Fatalf("campaign produced zero total regret (budget not tight enough): %+v", rep)
	}
	if rep.AttributedFraction < 0.95 {
		t.Fatalf("attributed %.1f%% of %.4f total regret, need >= 95%%:\n%s",
			100*rep.AttributedFraction, rep.TotalRegret, rep.Format())
	}
	if rep.Rows == 0 || len(rep.WorstRows) == 0 {
		t.Fatal("no attribution rows despite positive regret")
	}
	valid := map[string]bool{
		obs.ConstraintBudget: true, obs.ConstraintUserCap: true,
		obs.ConstraintUnprofitable: true, obs.ReasonChannelEstimate: true,
		obs.ReasonStructural: true,
	}
	ids := map[uint32]bool{}
	for _, s := range w.Sessions {
		ids[s.ID] = true
	}
	for _, row := range rep.WorstRows {
		if !valid[row.Reason] {
			t.Errorf("row with unknown reason %q", row.Reason)
		}
		if !ids[row.Session] {
			t.Errorf("row names session %d not in the workload", row.Session)
		}
	}
}
