package load

import (
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/fleet/coord"
	"repro/internal/obs"
)

// TestFleetCoordLeaderKillMidMigration is the PR's acceptance campaign:
// shard 1 is killed the same slot the coordinator leader dies, so every
// export is stuck with its ownership flip uncommittable — the exact
// "leader killed between export and flip" window. The survivors must
// elect, replay the queued flips, and finish the run with no session
// dropped, ownership converged to exactly one shard per session on every
// replica, each blackout bounded by the election timeout plus the
// migration outage, tail quality within 10% of the fault-free run, and
// the whole thing bit-identical per seed.
func TestFleetCoordLeaderKillMidMigration(t *testing.T) {
	baseGoroutines := obs.LeakSnapshot()
	w := fleetWorkload(t)
	const (
		killSlot   = 600
		leaseSlots = 8
		outage     = 2
	)

	base := FleetSimConfig{
		Shards:               3,
		Coordinators:         3,
		Coord:                coord.Config{LeaseSlots: leaseSlots},
		MigrationOutageSlots: outage,
	}
	baseline, err := SimulateFleet(w, base)
	if err != nil {
		t.Fatal(err)
	}

	faulted := base
	faulted.Sim.Chaos = &chaos.Profile{
		Name: "coord-leader-kill-mid-migration",
		Seed: 42,
		Faults: []chaos.Fault{
			{Kind: chaos.FaultShardKill, StartSlot: killSlot, Shard: 1},
			{Kind: chaos.FaultCoordKill, StartSlot: killSlot, Replica: 0},
		},
	}
	got, err := SimulateFleet(w, faulted)
	if err != nil {
		t.Fatal(err)
	}

	// No session dropped: every spawned session completes with outcomes.
	if got.Completed != got.Spawned || got.Failed != 0 {
		t.Fatalf("completed %d/%d (failed %d) — sessions were dropped",
			got.Completed, got.Spawned, got.Failed)
	}

	// The kill found the coordinator leaderless, so flips were queued: the
	// log rejected proposals during the outage, an election happened, and
	// the dead shard's sessions still all moved.
	co := got.Coord
	if co == nil {
		t.Fatal("no coord outcome in the report")
	}
	if co.Elections < 1 || co.Term < 2 {
		t.Fatalf("elections/term = %d/%d, want an election past bootstrap", co.Elections, co.Term)
	}
	if co.Rejected == 0 {
		t.Error("no rejected proposals — the kill never raced the flips")
	}
	if co.LeaderlessSlots == 0 || co.LeaderlessSlots > leaseSlots {
		t.Errorf("leaderless for %d slots, want within (0, %d] (the lease is the election timeout)",
			co.LeaderlessSlots, leaseSlots)
	}
	// Ownership converged to exactly one shard per session on every alive
	// replica — no split brain, no double owner.
	if !co.Converged {
		t.Error("replicas did not converge to an identical owner map")
	}
	s1 := got.Shards[1]
	if s1.MigratedOut == 0 {
		t.Fatal("dead shard migrated nothing out")
	}
	if adopted := got.Shards[0].MigratedIn + got.Shards[2].MigratedIn; adopted != s1.MigratedOut {
		t.Errorf("survivors adopted %d, shard 1 exported %d", adopted, s1.MigratedOut)
	}

	// Blackout bound: each migrated session is dark for at most the
	// election timeout (the dead leader's lease) plus the migration outage.
	if got.OutageSlots == 0 {
		t.Error("no outage slots charged")
	}
	if max := s1.MigratedOut * (leaseSlots + outage); got.OutageSlots > max {
		t.Errorf("outage session-slots %d > bound %d (migrated %d × (lease %d + outage %d))",
			got.OutageSlots, max, s1.MigratedOut, leaseSlots, outage)
	}

	// Tail quality: once the election and the flips clear, the survivors
	// carry the load within 10% of the fault-free run.
	tailFrom := killSlot + 100
	tail := got.MeanSlotQuality(tailFrom, len(got.SlotQuality))
	want := baseline.MeanSlotQuality(tailFrom, len(baseline.SlotQuality))
	if tail < 0.90*want {
		t.Errorf("post-failover tail quality %.3f < 90%% of fault-free %.3f", tail, want)
	}

	// Bit-identical per seed: elections, flip replay order and all.
	again, err := SimulateFleet(w, faulted)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Error("two identical leader-kill runs differ — the failover is not deterministic")
	}
	obs.AssertNoLeaks(t, baseGoroutines)
}

// TestFleetSimSingleReplicaByteIdentical pins the zero-cost-default
// guarantee: the single-replica coordinator (the default) must produce a
// report byte-identical to the cluster-disabled legacy path on a faulted
// golden campaign — same placements, same migrations, same QoE, down to
// every float.
func TestFleetSimSingleReplicaByteIdentical(t *testing.T) {
	w := fleetWorkload(t)
	mk := func(coordinators int) *FleetReport {
		t.Helper()
		cfg := FleetSimConfig{Shards: 3, Coordinators: coordinators}
		cfg.Sim.Chaos = shardKillProfile(600, 1)
		rep, err := SimulateFleet(w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	replicated := mk(1) // the default
	legacy := mk(-1)    // cluster disabled entirely

	co := replicated.Coord
	if co == nil || legacy.Coord != nil {
		t.Fatal("coord outcome presence is inverted")
	}
	// Single-replica mode never elects, never rejects, never leaves term 0
	// — so the fencing epoch never perturbs a handoff token.
	if co.Replicas != 1 || co.Term != 0 || co.Elections != 0 || co.Rejected != 0 || co.LeaderlessSlots != 0 {
		t.Fatalf("single-replica outcome %+v, want term 0 and no elections/rejections", co)
	}
	if !co.Converged {
		t.Error("a single replica cannot disagree with itself")
	}
	if co.Commits == 0 {
		t.Error("no commits — ownership mutations bypassed the cluster")
	}
	replicated.Coord = nil
	if !reflect.DeepEqual(replicated, legacy) {
		t.Error("single-replica run is not byte-identical to the cluster-disabled path")
	}
}

// TestFleetSimCoordFaultValidation: a profile naming a replica outside the
// cluster — or any coordinator fault with the cluster disabled — is a
// config error, mirroring the shard-range check.
func TestFleetSimCoordFaultValidation(t *testing.T) {
	w := fleetWorkload(t)
	kill := &chaos.Profile{
		Name:   "coord-kill",
		Seed:   1,
		Faults: []chaos.Fault{{Kind: chaos.FaultCoordKill, StartSlot: 10, Replica: 3}},
	}
	cfg := FleetSimConfig{Shards: 3, Coordinators: 3}
	cfg.Sim.Chaos = kill
	if _, err := SimulateFleet(w, cfg); err == nil {
		t.Error("replica 3 fault accepted by a 3-replica cluster")
	}
	cfg.Coordinators = -1
	if _, err := SimulateFleet(w, cfg); err == nil {
		t.Error("coordinator fault accepted with the cluster disabled")
	}
}

// TestFleetSimCoordQuorumLossRecovers runs the shipped example profile's
// shape in miniature: a permanent replica kill followed by a partition of
// a second replica drops the cluster below quorum for the window; no
// session is dropped, departures queue and replay, and the run converges.
func TestFleetSimCoordQuorumLossRecovers(t *testing.T) {
	w := fleetWorkload(t)
	cfg := FleetSimConfig{
		Shards:       3,
		Coordinators: 3,
		Coord:        coord.Config{LeaseSlots: 4},
	}
	cfg.Sim.Chaos = &chaos.Profile{
		Name: "coord-quorum-loss",
		Seed: 7,
		Faults: []chaos.Fault{
			{Kind: chaos.FaultCoordKill, StartSlot: 200, Replica: 0},
			{Kind: chaos.FaultCoordPartition, StartSlot: 500, DurationSlots: 60, Replica: 1},
		},
	}
	rep, err := SimulateFleet(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Spawned {
		t.Fatalf("completed %d/%d", rep.Completed, rep.Spawned)
	}
	co := rep.Coord
	if co == nil {
		t.Fatal("no coord outcome")
	}
	// The partition of the post-failover leader leaves one reachable
	// replica — below quorum — until the window heals, then a second
	// election recovers.
	if co.Elections < 2 {
		t.Errorf("elections = %d, want >= 2 (kill, then partition heal)", co.Elections)
	}
	if co.LeaderlessSlots < 60 {
		t.Errorf("leaderless slots = %d, want >= the 60-slot quorum-loss window", co.LeaderlessSlots)
	}
	if !co.Converged {
		t.Error("replicas did not converge after the heal")
	}
}
