// Package load is the scalable workload-generation, record/replay and
// capacity-search harness of the reproduction. The paper's own evaluation is
// trace-driven (Section IV: 100 head-motion traces per user, FCC + Ghent
// 4G/LTE network traces), but its setups are fixed at 5/8/15/30 users; this
// package asks the production question the ROADMAP cares about: how many
// concurrent VR sessions can one edge server sustain before deadline misses
// blow up?
//
// The subsystem has three layers:
//
//  1. Workload models — seeded, deterministic session-arrival processes
//     (steady, Poisson, two-state MMPP, flash crowd, diurnal ramp) with
//     session-duration churn and per-session motion/network-trace
//     assignment.
//  2. Record/replay — a workload (and, optionally, its full per-slot pose
//     event stream) serializes to JSONL; the same seed produces a
//     byte-identical file, and a recorded workload replays bit-identically,
//     so a regression in a later PR can be reproduced from a committed
//     workload file.
//  3. Measurement and capacity search — per-session QoE, deadline-miss and
//     latency percentiles aggregated through internal/obs, an end-of-run
//     report table, and a binary search for the maximum concurrent session
//     count that keeps the deadline-miss rate below a target.
//
// Execution comes in two flavours: a deterministic virtual-time engine
// (Simulate) used for replay verification and fast capacity probes, and a
// live engine (RunLive) that drives a real internal/server.Server over
// loopback sockets with hundreds to thousands of emulated clients.
package load

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/motion"
	"repro/internal/nettrace"
)

// Shape selects the session-arrival process.
type Shape string

const (
	// Steady spawns a fixed number of sessions near slot zero that live for
	// the whole horizon — the capacity-probe workload.
	Steady Shape = "steady"
	// Poisson draws i.i.d. exponential inter-arrivals at RatePerSec.
	Poisson Shape = "poisson"
	// MMPP is a two-state Markov-modulated Poisson process: a low state at
	// RatePerSec and a high state at RatePerSec*MMPPHighFactor, with
	// exponential dwell times — bursty arrivals with long-range correlation.
	MMPP Shape = "mmpp"
	// Flash is Poisson at RatePerSec with a flash-crowd window in which the
	// rate multiplies by BurstFactor.
	Flash Shape = "flash"
	// Diurnal modulates the Poisson rate by a raised-cosine day curve over
	// the horizon: quiet at the edges, peak in the middle.
	Diurnal Shape = "diurnal"
)

// Config parametrizes workload generation. The zero value of every optional
// field is replaced by the documented default; Generate never mutates the
// caller's copy.
type Config struct {
	Shape Shape `json:"shape"`
	Seed  int64 `json:"seed"`
	// HorizonSlots is the workload length in display slots.
	HorizonSlots int `json:"horizon_slots"`
	// SlotsPerSecond converts between seconds and slots (default 60).
	SlotsPerSecond float64 `json:"slots_per_second"`
	// Sessions caps the number of sessions. For Steady it is the concurrent
	// session count; for the stochastic shapes 0 means unlimited.
	Sessions int `json:"sessions"`
	// RatePerSec is the mean arrival rate of the stochastic shapes
	// (default 10).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// MeanHoldSec is the mean session duration; durations are exponential,
	// clamped to [MinHoldSec, remaining horizon]. 0 means sessions last the
	// whole horizon.
	MeanHoldSec float64 `json:"mean_hold_sec,omitempty"`
	// MinHoldSec floors the duration draw (default 0.5).
	MinHoldSec float64 `json:"min_hold_sec,omitempty"`
	// RampSlots spreads Steady arrivals over the first RampSlots slots so
	// that hundreds of handshakes do not land on one tick (default: one
	// second's worth of slots, clipped to a quarter of the horizon).
	RampSlots int `json:"ramp_slots,omitempty"`
	// BurstFactor multiplies the rate inside the Flash window (default 8).
	BurstFactor float64 `json:"burst_factor,omitempty"`
	// BurstStartFrac/BurstLenFrac place the Flash window as fractions of the
	// horizon (defaults 0.5 and 0.1).
	BurstStartFrac float64 `json:"burst_start_frac,omitempty"`
	BurstLenFrac   float64 `json:"burst_len_frac,omitempty"`
	// MMPPHighFactor is the high-state rate multiplier (default 4).
	MMPPHighFactor float64 `json:"mmpp_high_factor,omitempty"`
	// MMPPDwellSec is the mean dwell time per MMPP state (default 10).
	MMPPDwellSec float64 `json:"mmpp_dwell_sec,omitempty"`
	// NetKinds assigns network-trace profiles round-robin across sessions;
	// empty means the paper's half-broadband/half-LTE mix.
	NetKinds []nettrace.Kind `json:"net_kinds,omitempty"`
	// Net bounds the generated network traces (zero value: paper defaults).
	Net nettrace.Config `json:"net"`
}

// withDefaults returns a copy with every optional field defaulted.
func (c Config) withDefaults() Config {
	if c.Shape == "" {
		c.Shape = Steady
	}
	if c.SlotsPerSecond <= 0 {
		c.SlotsPerSecond = 60
	}
	if c.HorizonSlots <= 0 {
		c.HorizonSlots = int(10 * c.SlotsPerSecond)
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = 10
	}
	if c.MinHoldSec <= 0 {
		c.MinHoldSec = 0.5
	}
	if c.RampSlots <= 0 {
		c.RampSlots = int(c.SlotsPerSecond)
	}
	if quarter := c.HorizonSlots / 4; c.RampSlots > quarter && quarter > 0 {
		c.RampSlots = quarter
	}
	if c.BurstFactor <= 0 {
		c.BurstFactor = 8
	}
	if c.BurstStartFrac <= 0 {
		c.BurstStartFrac = 0.5
	}
	if c.BurstLenFrac <= 0 {
		c.BurstLenFrac = 0.1
	}
	if c.MMPPHighFactor <= 0 {
		c.MMPPHighFactor = 4
	}
	if c.MMPPDwellSec <= 0 {
		c.MMPPDwellSec = 10
	}
	if len(c.NetKinds) == 0 {
		c.NetKinds = []nettrace.Kind{nettrace.Broadband, nettrace.LTE}
	}
	if c.Net.MaxMbps <= c.Net.MinMbps {
		c.Net = nettrace.DefaultConfig()
	}
	return c
}

// SessionSpec is one emulated VR session: when it arrives and departs and
// the seeds from which its motion trace and network trace derive. Everything
// about a session is reproducible from its spec alone, which is what keeps
// workload files small: poses need not be stored to be replayed
// bit-identically.
type SessionSpec struct {
	ID         uint32        `json:"id"`
	ArriveSlot int           `json:"arrive"`
	DepartSlot int           `json:"depart"` // exclusive
	Scene      int           `json:"scene"`  // index into motion.Scenes()
	MotionSeed int64         `json:"motion_seed"`
	NetKind    nettrace.Kind `json:"net_kind"`
	NetSeed    int64         `json:"net_seed"`
}

// Slots returns the session's lifetime in slots.
func (s SessionSpec) Slots() int { return s.DepartSlot - s.ArriveSlot }

// Workload is a generated (or replayed) set of sessions, sorted by arrival
// slot and, within a slot, by ID.
type Workload struct {
	Cfg      Config
	Sessions []SessionSpec
}

// Generate builds the workload deterministically from cfg.Seed: the same
// configuration always yields the identical session list.
func Generate(cfg Config) (*Workload, error) {
	cfg = cfg.withDefaults()
	if cfg.Shape == Steady && cfg.Sessions <= 0 {
		return nil, fmt.Errorf("load: steady workload needs Sessions > 0")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{Cfg: cfg}

	if cfg.Shape == Steady {
		for i := 0; i < cfg.Sessions; i++ {
			arrive := 0
			if cfg.RampSlots > 1 {
				arrive = i % cfg.RampSlots
			}
			w.addSession(rng, arrive)
		}
		// Steady sessions arrive round-robin across the ramp; restore
		// arrival order.
		sortSessions(w.Sessions)
		return w, nil
	}

	// The stochastic shapes share one mechanism: a per-slot arrival count
	// drawn from Poisson(lambda(t) * dt), with lambda(t) set by the shape.
	dt := 1 / cfg.SlotsPerSecond
	mmppHigh := false
	switchProb := dt / cfg.MMPPDwellSec
	burstStart := int(cfg.BurstStartFrac * float64(cfg.HorizonSlots))
	burstEnd := burstStart + int(cfg.BurstLenFrac*float64(cfg.HorizonSlots))
	for slot := 0; slot < cfg.HorizonSlots; slot++ {
		lambda := cfg.RatePerSec
		switch cfg.Shape {
		case Poisson:
			// Constant rate.
		case MMPP:
			if rng.Float64() < switchProb {
				mmppHigh = !mmppHigh
			}
			if mmppHigh {
				lambda *= cfg.MMPPHighFactor
			}
		case Flash:
			if slot >= burstStart && slot < burstEnd {
				lambda *= cfg.BurstFactor
			}
		case Diurnal:
			frac := float64(slot) / float64(cfg.HorizonSlots)
			lambda *= 0.1 + 0.9*0.5*(1-math.Cos(2*math.Pi*frac))
		default:
			return nil, fmt.Errorf("load: unknown arrival shape %q", cfg.Shape)
		}
		for n := poissonSample(rng, lambda*dt); n > 0; n-- {
			if cfg.Sessions > 0 && len(w.Sessions) >= cfg.Sessions {
				return w, nil
			}
			w.addSession(rng, slot)
		}
	}
	return w, nil
}

// addSession appends one session arriving at the given slot, drawing its
// duration and trace seeds from rng in a fixed order.
func (w *Workload) addSession(rng *rand.Rand, arrive int) {
	cfg := w.Cfg
	id := uint32(len(w.Sessions))
	depart := cfg.HorizonSlots
	if cfg.MeanHoldSec > 0 {
		holdSec := rng.ExpFloat64() * cfg.MeanHoldSec
		if holdSec < cfg.MinHoldSec {
			holdSec = cfg.MinHoldSec
		}
		depart = arrive + int(holdSec*cfg.SlotsPerSecond)
		if depart > cfg.HorizonSlots {
			depart = cfg.HorizonSlots
		}
		if depart <= arrive {
			depart = arrive + 1
		}
	}
	w.Sessions = append(w.Sessions, SessionSpec{
		ID:         id,
		ArriveSlot: arrive,
		DepartSlot: depart,
		Scene:      int(id) % len(motion.Scenes()),
		MotionSeed: rng.Int63(),
		NetKind:    cfg.NetKinds[int(id)%len(cfg.NetKinds)],
		NetSeed:    rng.Int63(),
	})
}

// sortSessions orders by (ArriveSlot, ID) with a stable insertion sort (the
// lists are nearly sorted already).
func sortSessions(specs []SessionSpec) {
	for i := 1; i < len(specs); i++ {
		for j := i; j > 0; j-- {
			a, b := specs[j-1], specs[j]
			if a.ArriveSlot < b.ArriveSlot || (a.ArriveSlot == b.ArriveSlot && a.ID < b.ID) {
				break
			}
			specs[j-1], specs[j] = b, a
		}
	}
}

// poissonSample draws from Poisson(lambda) by Knuth's product method; the
// per-slot lambdas here are far below one, so the loop is short.
func poissonSample(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// PeakConcurrent returns the maximum number of simultaneously active
// sessions over the horizon.
func (w *Workload) PeakConcurrent() int {
	if len(w.Sessions) == 0 {
		return 0
	}
	delta := make(map[int]int)
	for _, s := range w.Sessions {
		delta[s.ArriveSlot]++
		delta[s.DepartSlot]--
	}
	slots := make([]int, 0, len(delta))
	for s := range delta {
		slots = append(slots, s)
	}
	// Small slice; insertion sort keeps the package dependency-free.
	for i := 1; i < len(slots); i++ {
		for j := i; j > 0 && slots[j-1] > slots[j]; j-- {
			slots[j-1], slots[j] = slots[j], slots[j-1]
		}
	}
	cur, peak := 0, 0
	for _, s := range slots {
		cur += delta[s]
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// MotionTrace regenerates the session's motion trace: the walk it replays
// from arrival to departure (plus extraSlots of slack so a live client never
// wraps early). Deterministic in the spec.
func (w *Workload) MotionTrace(spec SessionSpec, extraSlots int) motion.Trace {
	scenes := motion.Scenes()
	return motion.Generate(scenes[spec.Scene%len(scenes)], int(spec.ID),
		spec.Slots()+extraSlots, w.Cfg.SlotsPerSecond, spec.MotionSeed)
}

// CapSlots regenerates the session's per-slot link capacity in Mbps from its
// assigned network trace. Deterministic in the spec.
func (w *Workload) CapSlots(spec SessionSpec) []float64 {
	rng := rand.New(rand.NewSource(spec.NetSeed))
	tr := nettrace.Generate(spec.NetKind, w.Cfg.Net, rng)
	return tr.Slotted(spec.Slots(), w.Cfg.SlotsPerSecond)
}
