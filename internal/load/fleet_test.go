package load

import (
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/obs"
)

// fleetWorkload is the shared campaign: 9 steady sessions across a 1200-slot
// horizon — enough window for a mid-run shard kill and a long tail after it.
func fleetWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := Generate(Config{
		Shape:        Steady,
		Seed:         42,
		HorizonSlots: 1200,
		Sessions:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func shardKillProfile(slot, shard int) *chaos.Profile {
	return &chaos.Profile{
		Name:   "test-shard-kill",
		Seed:   42,
		Faults: []chaos.Fault{{Kind: chaos.FaultShardKill, StartSlot: slot, Shard: shard}},
	}
}

// TestFleetSimShardKillMigratesNotDrops is the PR's acceptance campaign:
// killing 1 of 3 shards mid-run migrates its sessions instead of dropping
// them, the run reproduces bit-for-bit per seed, and post-migration tail
// quality stays within 10% of the fault-free run.
func TestFleetSimShardKillMigratesNotDrops(t *testing.T) {
	w := fleetWorkload(t)
	const killSlot = 600

	base := FleetSimConfig{Shards: 3}
	baseline, err := SimulateFleet(w, base)
	if err != nil {
		t.Fatal(err)
	}

	faulted := FleetSimConfig{Shards: 3}
	faulted.Sim.Chaos = shardKillProfile(killSlot, 1)
	got, err := SimulateFleet(w, faulted)
	if err != nil {
		t.Fatal(err)
	}

	// Degrades, not drops: every spawned session completes with slots in
	// both runs.
	if got.Completed != got.Spawned || got.Failed != 0 {
		t.Fatalf("kill run completed %d/%d (failed %d) — sessions were dropped",
			got.Completed, got.Spawned, got.Failed)
	}
	if len(got.Outcomes) != len(baseline.Outcomes) {
		t.Fatalf("outcome count %d != baseline %d", len(got.Outcomes), len(baseline.Outcomes))
	}

	// The dead shard's sessions moved: shard 1 hands off everything it
	// owned and serves nothing after the kill.
	s1 := got.Shards[1]
	if s1.KilledSlot != killSlot {
		t.Errorf("shard 1 KilledSlot = %d, want %d", s1.KilledSlot, killSlot)
	}
	if s1.MigratedOut == 0 {
		t.Error("shard 1 migrated nothing out on kill")
	}
	if got.Migrations != s1.MigratedOut {
		t.Errorf("Migrations = %d, want %d (only the kill migrates)", got.Migrations, s1.MigratedOut)
	}
	adopted := got.Shards[0].MigratedIn + got.Shards[2].MigratedIn
	if adopted != s1.MigratedOut {
		t.Errorf("survivors adopted %d, shard 1 exported %d", adopted, s1.MigratedOut)
	}
	if got.OutageSlots == 0 {
		t.Error("no outage slots charged — migration should cost a blackout window")
	}

	// The migration blackout must dent the kill slot itself.
	if got.SlotQuality[killSlot] >= baseline.SlotQuality[killSlot] {
		t.Errorf("no quality dip at kill slot: got %v >= baseline %v",
			got.SlotQuality[killSlot], baseline.SlotQuality[killSlot])
	}

	// Tail recovery: after the outage clears, the survivors carry the load
	// at within 10% of the fault-free run's tail quality.
	tailFrom := killSlot + 100
	tail := got.MeanSlotQuality(tailFrom, len(got.SlotQuality))
	want := baseline.MeanSlotQuality(tailFrom, len(baseline.SlotQuality))
	if tail < 0.90*want {
		t.Errorf("post-migration tail quality %.3f < 90%% of fault-free %.3f", tail, want)
	}

	// Bit-for-bit determinism: an identical run is deep-equal.
	again, err := SimulateFleet(w, faulted)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Error("two identical fleet-sim runs differ — engine is not deterministic")
	}
}

// TestFleetSimDrainAndRejoin: a drain empties the shard like a kill but
// keeps it alive; when the drain window closes the shard rejoins the
// accepting set and receives budget again.
func TestFleetSimDrainAndRejoin(t *testing.T) {
	w := fleetWorkload(t)
	cfg := FleetSimConfig{Shards: 3}
	cfg.Sim.Chaos = &chaos.Profile{
		Name: "test-drain",
		Seed: 1,
		Faults: []chaos.Fault{
			{Kind: chaos.FaultShardDrain, StartSlot: 300, DurationSlots: 240, Shard: 2},
		},
	}
	rep, err := SimulateFleet(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Spawned {
		t.Fatalf("drain run completed %d/%d", rep.Completed, rep.Spawned)
	}
	s2 := rep.Shards[2]
	if s2.DrainSlot != 300 {
		t.Errorf("shard 2 DrainSlot = %d, want 300", s2.DrainSlot)
	}
	if s2.KilledSlot != -1 {
		t.Errorf("shard 2 KilledSlot = %d, want -1 (drained, not killed)", s2.KilledSlot)
	}
	if s2.MigratedOut == 0 {
		t.Error("drain migrated nothing out")
	}
	// After the window closes the shard is accepting again, so the final
	// rebalance gives it at least the floor share.
	if s2.FinalBudgetMbps <= 0 {
		t.Errorf("rejoined shard 2 has no budget (%v)", s2.FinalBudgetMbps)
	}
}

// TestFleetSimPlacementRecords: arrivals and migrations land in the
// placement recorder with the reasons and shard arithmetic the /debug/fleet
// endpoint reports.
func TestFleetSimPlacementRecords(t *testing.T) {
	w := fleetWorkload(t)
	rec := obs.NewPlacementRecorder(obs.PlacementRecorderOptions{RingSize: 64})
	cfg := FleetSimConfig{Shards: 3, Recorder: rec}
	cfg.Sim.Chaos = shardKillProfile(600, 0)
	rep, err := SimulateFleet(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	arrivals, kills := 0, 0
	for _, r := range rec.Recent(64) {
		switch r.Reason {
		case obs.PlaceArrival:
			arrivals++
			if r.From != -1 {
				t.Errorf("arrival record has From = %d, want -1", r.From)
			}
		case obs.PlaceShardKill:
			kills++
			if r.From != 0 {
				t.Errorf("kill record has From = %d, want 0", r.From)
			}
			if r.Chosen == 0 {
				t.Error("kill record re-placed a session on the dead shard")
			}
		}
	}
	if arrivals != rep.Placements {
		t.Errorf("%d arrival records, report says %d placements", arrivals, rep.Placements)
	}
	if kills != rep.Migrations {
		t.Errorf("%d kill records, report says %d migrations", kills, rep.Migrations)
	}
}

// TestFleetSimScorers: every named scorer runs the same campaign to
// completion, deterministically, and the report carries its name.
func TestFleetSimScorers(t *testing.T) {
	w := fleetWorkload(t)
	for _, name := range []string{"least-loaded", "locality", "slo-burn"} {
		cfg := FleetSimConfig{Shards: 3, Scorer: name, Zones: 2}
		rep, err := SimulateFleet(w, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Completed != rep.Spawned {
			t.Errorf("%s: completed %d/%d", name, rep.Completed, rep.Spawned)
		}
		if rep.Scorer != name {
			t.Errorf("report scorer = %q, want %q", rep.Scorer, name)
		}
	}
	if _, err := SimulateFleet(w, FleetSimConfig{Scorer: "nope"}); err == nil {
		t.Error("unknown scorer accepted")
	}
	// A profile naming a shard outside the fleet is a config error.
	bad := FleetSimConfig{Shards: 2}
	bad.Sim.Chaos = shardKillProfile(10, 5)
	if _, err := SimulateFleet(w, bad); err == nil {
		t.Error("out-of-range shard fault accepted")
	}
}
