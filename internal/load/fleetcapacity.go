package load

import (
	"fmt"
	"strings"
)

// FleetProbeFunc runs one fleet load probe: n concurrent sessions across
// the given shard count at the given global budget, returning the
// aggregate deadline-miss rate.
type FleetProbeFunc func(n, shards int, globalBudgetMbps float64) (float64, error)

// FleetCapacityResult pairs the two knees a fleet operator sizes against:
// what the whole fleet sustains, and what one shard sustains on its equal
// budget slice. Fleet/(Shards*PerShard) is the fleet's pooling efficiency —
// how much the router's statistical multiplexing buys over N isolated
// shards.
type FleetCapacityResult struct {
	Shards           int
	GlobalBudgetMbps float64
	// Fleet is the capacity of N shards sharing the global budget.
	Fleet *CapacityResult
	// PerShard is the knee of a single shard running on budget/N.
	PerShard *CapacityResult
}

// PoolingEfficiency is fleet capacity over shards x per-shard capacity
// (0 when either search bottomed out).
func (r *FleetCapacityResult) PoolingEfficiency() float64 {
	if r.Fleet == nil || r.PerShard == nil || r.PerShard.MaxSessions == 0 {
		return 0
	}
	return float64(r.Fleet.MaxSessions) / float64(r.Shards*r.PerShard.MaxSessions)
}

// Format renders both probe ladders and the fleet verdict.
func (r *FleetCapacityResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# fleet capacity search (%d shards, global budget %.0f Mbps)\n",
		r.Shards, r.GlobalBudgetMbps)
	b.WriteString("## fleet total\n")
	b.WriteString(r.Fleet.Format())
	fmt.Fprintf(&b, "## per-shard knee (1 shard at %.1f Mbps)\n",
		r.GlobalBudgetMbps/float64(r.Shards))
	b.WriteString(r.PerShard.Format())
	if eff := r.PoolingEfficiency(); eff > 0 {
		fmt.Fprintf(&b, "pooling efficiency: %.2f (fleet %d vs %d x per-shard %d)\n",
			eff, r.Fleet.MaxSessions, r.Shards, r.PerShard.MaxSessions)
	}
	return b.String()
}

// FindFleetCapacity runs the capacity search at both granularities: the
// full fleet (shards sharing the global budget) and a single shard on its
// equal slice. The per-shard search scales the bracket by the shard count
// so both searches spend comparable probe effort.
func FindFleetCapacity(lo, hi int, target float64, shards int,
	globalBudgetMbps float64, probe FleetProbeFunc) (*FleetCapacityResult, error) {
	if shards <= 0 {
		shards = 3
	}
	res := &FleetCapacityResult{Shards: shards, GlobalBudgetMbps: globalBudgetMbps}

	fleetRes, err := FindCapacity(lo, hi, target, func(n int) (float64, error) {
		return probe(n, shards, globalBudgetMbps)
	})
	if err != nil {
		return nil, fmt.Errorf("fleet search: %w", err)
	}
	res.Fleet = fleetRes

	shardLo := lo / shards
	if shardLo < 1 {
		shardLo = 1
	}
	shardHi := hi / shards
	if shardHi < shardLo {
		shardHi = shardLo
	}
	perShard, err := FindCapacity(shardLo, shardHi, target, func(n int) (float64, error) {
		return probe(n, 1, globalBudgetMbps/float64(shards))
	})
	if err != nil {
		return nil, fmt.Errorf("per-shard search: %w", err)
	}
	res.PerShard = perShard
	return res, nil
}
