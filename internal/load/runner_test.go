package load

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestRunLiveSmall drives a real server over loopback with a handful of
// churning sessions at an accelerated slot clock and checks the live
// accounting end to end.
func TestRunLiveSmall(t *testing.T) {
	w, err := Generate(Config{Shape: Steady, Sessions: 8, HorizonSlots: 60,
		MeanHoldSec: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rep, err := RunLive(w, LiveConfig{
		SlotDuration: 5 * time.Millisecond,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "live" {
		t.Errorf("mode %q, want live", rep.Mode)
	}
	if rep.Spawned != 8 {
		t.Errorf("spawned %d, want 8", rep.Spawned)
	}
	if rep.Completed+rep.Failed != rep.Spawned {
		t.Errorf("accounting leak: completed %d + failed %d != spawned %d",
			rep.Completed, rep.Failed, rep.Spawned)
	}
	if rep.Completed == 0 {
		t.Fatal("no session completed")
	}
	if rep.PeakConcurrent < 1 || rep.PeakConcurrent > 8 {
		t.Errorf("peak concurrent %d out of range", rep.PeakConcurrent)
	}
	for i, o := range rep.Outcomes {
		if o.Slots <= 0 {
			t.Errorf("outcome %d: no slots served", i)
		}
		if o.SetupMs <= 0 {
			t.Errorf("outcome %d: setup latency not measured", i)
		}
		if i > 0 && rep.Outcomes[i-1].ID >= o.ID {
			t.Errorf("outcomes not sorted by ID at %d", i)
		}
	}
	if rep.WallSec <= 0 {
		t.Error("wall time not measured")
	}
	// The shared registry must carry the harness instruments.
	var text strings.Builder
	if err := reg.WritePrometheus(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"collabvr_loadgen_sessions_completed_total",
		"collabvr_loadgen_session_qoe",
		"collabvr_server_sessions_joined_total",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("registry exposition missing %s", want)
		}
	}
}

// TestRunLiveBackpressure checks accept-loop backpressure: with MaxSessions
// below the steady concurrency, the excess sessions are rejected (closed
// before their first slot) and counted as failed, while admitted sessions
// finish normally.
func TestRunLiveBackpressure(t *testing.T) {
	w, err := Generate(Config{Shape: Steady, Sessions: 6, HorizonSlots: 50,
		RampSlots: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rep, err := RunLive(w, LiveConfig{
		SlotDuration: 5 * time.Millisecond,
		MaxSessions:  3,
		Metrics:      reg,
		Unshaped:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed > 3 {
		t.Errorf("completed %d sessions with MaxSessions=3", rep.Completed)
	}
	if rep.Failed < 3 {
		t.Errorf("failed %d, want the 3 excess sessions rejected", rep.Failed)
	}
	if got := reg.Counter("collabvr_server_sessions_rejected_total").Value(); got < 3 {
		t.Errorf("rejected counter %v, want >= 3", got)
	}
}
