package load

import (
	"reflect"
	"testing"

	"repro/internal/nettrace"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, shape := range []Shape{Steady, Poisson, MMPP, Flash, Diurnal} {
		cfg := Config{Shape: shape, Seed: 42, HorizonSlots: 600, Sessions: 50,
			RatePerSec: 15, MeanHoldSec: 2}
		a, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		b, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if !reflect.DeepEqual(a.Sessions, b.Sessions) {
			t.Errorf("%s: same seed produced different workloads", shape)
		}
		if len(a.Sessions) == 0 {
			t.Errorf("%s: generated no sessions", shape)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := Config{Shape: Poisson, HorizonSlots: 600, RatePerSec: 15, MeanHoldSec: 2}
	cfg.Seed = 1
	a, _ := Generate(cfg)
	cfg.Seed = 2
	b, _ := Generate(cfg)
	if reflect.DeepEqual(a.Sessions, b.Sessions) {
		t.Error("different seeds produced identical workloads")
	}
}

func TestSteadyShape(t *testing.T) {
	w, err := Generate(Config{Shape: Steady, Sessions: 120, HorizonSlots: 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Sessions) != 120 {
		t.Fatalf("want 120 sessions, got %d", len(w.Sessions))
	}
	ramp := w.Cfg.RampSlots
	for _, s := range w.Sessions {
		if s.ArriveSlot < 0 || s.ArriveSlot >= ramp {
			t.Fatalf("session %d arrives at %d, outside ramp [0,%d)", s.ID, s.ArriveSlot, ramp)
		}
		if s.DepartSlot != w.Cfg.HorizonSlots {
			t.Fatalf("session %d departs at %d, want full horizon %d (MeanHoldSec=0)",
				s.ID, s.DepartSlot, w.Cfg.HorizonSlots)
		}
	}
	if got := w.PeakConcurrent(); got != 120 {
		t.Errorf("steady peak concurrent = %d, want 120", got)
	}
	if _, err := Generate(Config{Shape: Steady}); err == nil {
		t.Error("steady with Sessions=0 should be rejected")
	}
}

func TestSessionsSortedAndWithinHorizon(t *testing.T) {
	w, err := Generate(Config{Shape: MMPP, Seed: 7, HorizonSlots: 1200,
		RatePerSec: 10, MeanHoldSec: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range w.Sessions {
		if s.DepartSlot <= s.ArriveSlot {
			t.Fatalf("session %d: empty lifetime [%d,%d)", s.ID, s.ArriveSlot, s.DepartSlot)
		}
		if s.ArriveSlot < 0 || s.DepartSlot > w.Cfg.HorizonSlots {
			t.Fatalf("session %d outside horizon: [%d,%d)", s.ID, s.ArriveSlot, s.DepartSlot)
		}
		if i > 0 {
			p := w.Sessions[i-1]
			if p.ArriveSlot > s.ArriveSlot ||
				(p.ArriveSlot == s.ArriveSlot && p.ID >= s.ID) {
				t.Fatalf("sessions out of order at %d: (%d,%d) then (%d,%d)",
					i, p.ArriveSlot, p.ID, s.ArriveSlot, s.ID)
			}
		}
	}
}

func TestSessionsCapRespected(t *testing.T) {
	w, err := Generate(Config{Shape: Poisson, Seed: 3, HorizonSlots: 6000,
		RatePerSec: 50, MeanHoldSec: 1, Sessions: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Sessions) != 40 {
		t.Errorf("cap 40, got %d sessions", len(w.Sessions))
	}
}

func TestFlashCrowdConcentratesArrivals(t *testing.T) {
	cfg := Config{Seed: 11, HorizonSlots: 3600, RatePerSec: 5, MeanHoldSec: 2}
	cfg.Shape = Flash
	flash, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := flash.Cfg
	burstStart := int(c.BurstStartFrac * float64(c.HorizonSlots))
	burstEnd := burstStart + int(c.BurstLenFrac*float64(c.HorizonSlots))
	inBurst := 0
	for _, s := range flash.Sessions {
		if s.ArriveSlot >= burstStart && s.ArriveSlot < burstEnd {
			inBurst++
		}
	}
	// The burst window is 10% of the horizon at 8x rate: roughly 8/17 of all
	// arrivals land there, versus 10% under plain Poisson.
	frac := float64(inBurst) / float64(len(flash.Sessions))
	if frac < 0.25 {
		t.Errorf("flash burst window holds only %.2f of arrivals, want clearly above the 0.10 baseline", frac)
	}
}

func TestDiurnalQuietAtEdges(t *testing.T) {
	w, err := Generate(Config{Shape: Diurnal, Seed: 5, HorizonSlots: 6000,
		RatePerSec: 10, MeanHoldSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	edge, middle := 0, 0
	h := w.Cfg.HorizonSlots
	for _, s := range w.Sessions {
		switch {
		case s.ArriveSlot < h/10 || s.ArriveSlot >= h-h/10:
			edge++
		case s.ArriveSlot >= 4*h/10 && s.ArriveSlot < 6*h/10:
			middle++
		}
	}
	if middle <= edge {
		t.Errorf("diurnal should peak mid-horizon: edge=%d middle=%d", edge, middle)
	}
}

func TestTraceRegenerationDeterministic(t *testing.T) {
	w, err := Generate(Config{Shape: Steady, Sessions: 4, HorizonSlots: 300})
	if err != nil {
		t.Fatal(err)
	}
	spec := w.Sessions[2]
	if !reflect.DeepEqual(w.MotionTrace(spec, 8), w.MotionTrace(spec, 8)) {
		t.Error("motion trace regeneration is not deterministic")
	}
	if !reflect.DeepEqual(w.CapSlots(spec), w.CapSlots(spec)) {
		t.Error("capacity trace regeneration is not deterministic")
	}
	caps := w.CapSlots(spec)
	if len(caps) != spec.Slots() {
		t.Fatalf("cap trace length %d, want %d", len(caps), spec.Slots())
	}
	for _, c := range caps {
		if c <= 0 {
			t.Fatal("non-positive link capacity in trace")
		}
	}
}

func TestNetKindsRoundRobin(t *testing.T) {
	kinds := []nettrace.Kind{nettrace.MmWave, nettrace.LTE, nettrace.Broadband}
	w, err := Generate(Config{Shape: Steady, Sessions: 9, HorizonSlots: 300, NetKinds: kinds})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range w.Sessions {
		if want := kinds[int(s.ID)%3]; s.NetKind != want {
			t.Fatalf("session %d: kind %v, want %v", s.ID, s.NetKind, want)
		}
	}
}

func TestPeakConcurrent(t *testing.T) {
	w := &Workload{Sessions: []SessionSpec{
		{ID: 0, ArriveSlot: 0, DepartSlot: 10},
		{ID: 1, ArriveSlot: 5, DepartSlot: 15},
		{ID: 2, ArriveSlot: 9, DepartSlot: 12},
		{ID: 3, ArriveSlot: 10, DepartSlot: 20}, // arrives as 0 departs
	}}
	if got := w.PeakConcurrent(); got != 3 {
		t.Errorf("peak concurrent = %d, want 3", got)
	}
}
