package load

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TestSimulateEmitsStitchedSpans checks the virtual-time engine speaks the
// same span schema as the live engine: a single Simulate run produces
// server- and client-side spans that stitch into per-request traces, with
// every trace ID derivable from (epoch, user, slot) and the solve labelled
// with the algorithm name.
func TestSimulateEmitsStitchedSpans(t *testing.T) {
	const epoch = 9
	w, err := Generate(Config{Shape: Steady, Sessions: 4, HorizonSlots: 60,
		MeanHoldSec: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	exp := trace.NewExporter(trace.ExporterOptions{RingSize: 1 << 14, Writer: &buf, Sync: true})
	tr := trace.New(trace.Options{Exporter: exp})
	rep, err := Simulate(w, SimConfig{Tracer: tr, TraceEpoch: epoch})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatal("no sessions completed")
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	if exp.Dropped() != 0 {
		t.Fatalf("sync exporter dropped %d spans", exp.Dropped())
	}

	spans, err := trace.ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans exported")
	}
	stages := make(map[string]int)
	for _, sp := range spans {
		stages[sp.Stage]++
		if want := trace.TileTraceID(epoch, sp.User, sp.Slot); sp.Trace != want {
			t.Fatalf("span %s user=%d slot=%d trace=%x, want %x",
				sp.Stage, sp.User, sp.Slot, sp.Trace, want)
		}
		if sp.Stage == trace.StageDecide && sp.Algo != "proposed" {
			t.Fatalf("decide span algo %q, want proposed", sp.Algo)
		}
		if sp.EndNs < sp.StartNs {
			t.Fatalf("span %s runs backwards: %d..%d", sp.Stage, sp.StartNs, sp.EndNs)
		}
	}
	for _, want := range []string{trace.StageDecide, trace.StageSend, trace.StageRecv, trace.StageDisplay} {
		if stages[want] == 0 {
			t.Errorf("no %s spans", want)
		}
	}
	a := trace.Analyze(spans, 3)
	if a.Stitched == 0 {
		t.Fatalf("no stitched traces out of %d", a.Traces)
	}
	if a.Displayed+a.Missed != a.Traces {
		t.Errorf("outcome accounting: displayed %d + missed %d != traces %d",
			a.Displayed, a.Missed, a.Traces)
	}
}

// TestSimulateSpanDeterminism pins the virtual-clock parts of the span
// stream: two runs over the same workload emit the identical span sequence,
// except for the slot.decide span's end timestamp, which is the measured
// wall time of the solve (the one real cost inside a virtual slot).
func TestSimulateSpanDeterminism(t *testing.T) {
	w, err := Generate(Config{Shape: Steady, Sessions: 3, HorizonSlots: 50,
		MeanHoldSec: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	run := func() []trace.SpanRecord {
		var buf bytes.Buffer
		exp := trace.NewExporter(trace.ExporterOptions{RingSize: 1 << 14, Writer: &buf, Sync: true})
		tr := trace.New(trace.Options{Exporter: exp})
		if _, err := Simulate(w, SimConfig{Tracer: tr, TraceEpoch: 1}); err != nil {
			t.Fatal(err)
		}
		if err := exp.Close(); err != nil {
			t.Fatal(err)
		}
		spans, err := trace.ReadSpans(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range spans {
			if spans[i].Stage == trace.StageDecide {
				spans[i].EndNs = 0 // wall-measured solve duration
			}
		}
		return spans
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d differs:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}

// TestSimulateFeedsSLO starves the virtual egress so every slot misses its
// deadline and checks the SLO monitor wired through SimConfig pages, and
// that sessions are retired on departure.
func TestSimulateFeedsSLO(t *testing.T) {
	w, err := Generate(Config{Shape: Steady, Sessions: 3, HorizonSlots: 80,
		MeanHoldSec: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	slo := obs.NewSLOMonitor(obs.SLOConfig{WindowSlots: 40, ShortWindowSlots: 10}, reg)
	if _, err := Simulate(w, SimConfig{BudgetMbps: 0.5, Metrics: reg, SLO: slo}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("collabvr_slo_page_transitions_total").Value(); got == 0 {
		t.Error("starved egress produced no SLO pages")
	}
	if snap := slo.Snapshot(); len(snap.Sessions) != 0 {
		t.Errorf("%d sessions not retired after departure", len(snap.Sessions))
	}
}

// TestRunLiveTracePropagation runs the live loopback engine with a shared
// tracer and checks the load layer forwards it to both halves: the exported
// stream stitches server and client spans under the configured epoch.
func TestRunLiveTracePropagation(t *testing.T) {
	const epoch = 21
	w, err := Generate(Config{Shape: Steady, Sessions: 4, HorizonSlots: 60,
		MeanHoldSec: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tracer := trace.New(trace.Options{Exporter: trace.NewExporter(trace.ExporterOptions{RingSize: 1 << 15})})
	rep, err := RunLive(w, LiveConfig{
		SlotDuration: 5 * time.Millisecond,
		Unshaped:     true,
		Tracer:       tracer,
		TraceEpoch:   epoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatal("no sessions completed")
	}
	spans := tracer.Exporter().Recent(1 << 15)
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	for _, sp := range spans {
		if sp.Side == trace.SideServer {
			if want := trace.TileTraceID(epoch, sp.User, sp.Slot); sp.Trace != want {
				t.Fatalf("server span %s user=%d slot=%d trace=%x, want %x",
					sp.Stage, sp.User, sp.Slot, sp.Trace, want)
			}
		}
	}
	a := trace.Analyze(spans, 3)
	if a.Stitched == 0 {
		t.Fatalf("no stitched traces (%d traces, %d spans)", a.Traces, len(spans))
	}
}
