package load

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/obs"
)

// Candidate is one policy entrant of a tournament: a named allocator
// factory, optionally with its own objective parameters (tuned alpha/beta
// variants compete under their own weights but are scored on the shared
// fitness function).
type Candidate struct {
	Name string
	// NewAllocator builds the candidate's allocator (fresh per run).
	NewAllocator func() core.Allocator
	// Params, when non-nil, overrides the tournament's base parameters for
	// this candidate's run.
	Params *core.Params
}

// FitnessWeights combines the per-candidate measurements into one scalar.
// Fitness = QoE*meanQoE + Fairness*jain - Miss*missRate - Regret*meanRegret,
// so higher is better on every axis.
type FitnessWeights struct {
	QoE      float64 `json:"qoe"`
	Fairness float64 `json:"fairness"`
	Miss     float64 `json:"miss"`
	Regret   float64 `json:"regret"`
}

// DefaultFitnessWeights weight mean session QoE and Jain fairness equally,
// penalize deadline misses hard (a missed frame is the QoE cliff the paper
// optimizes against) and regret lightly (it is measured per slot on the
// objective scale, already reflected in QoE).
func DefaultFitnessWeights() FitnessWeights {
	return FitnessWeights{QoE: 1, Fairness: 1, Miss: 5, Regret: 0.05}
}

// TournamentConfig parametrizes a deterministic policy tournament.
type TournamentConfig struct {
	// Sim is the base engine config shared by every candidate. Its
	// NewAllocator/AllocName/Recorder fields are ignored: each candidate
	// runs hermetically with its own allocator and flight recorder.
	Sim SimConfig
	// Candidates is the roster (default: DefaultCandidates()).
	Candidates []Candidate
	// Weights is the fitness function (zero value: DefaultFitnessWeights).
	Weights FitnessWeights
	// SkipRegret disables the per-slot DP reference solve (fitness then
	// scores regret as zero) — a fast mode for large workloads.
	SkipRegret bool
}

// TournamentEntry is one candidate's scored result.
type TournamentEntry struct {
	Rank       int     `json:"rank"`
	Name       string  `json:"name"`
	Fitness    float64 `json:"fitness"`
	MeanQoE    float64 `json:"mean_qoe"`
	Fairness   float64 `json:"fairness"`
	MissRate   float64 `json:"miss_rate"`
	MeanRegret float64 `json:"mean_regret"`
	// TotalRegret and AttributedFraction summarize the candidate's regret
	// attribution (zero with SkipRegret).
	TotalRegret        float64 `json:"total_regret"`
	AttributedFraction float64 `json:"attributed_fraction"`
	// Completed sessions and degraded slots, for context.
	Completed     int `json:"completed"`
	DegradedSlots int `json:"degraded_slots"`
}

// TournamentResult is the ranked outcome of one tournament.
type TournamentResult struct {
	HorizonSlots int               `json:"horizon_slots"`
	Sessions     int               `json:"sessions"`
	Weights      FitnessWeights    `json:"weights"`
	Entries      []TournamentEntry `json:"entries"`
}

// DefaultCandidates is the standard roster: both Algorithm 1 engines (heap
// solver and reference rescan — they must tie exactly, a built-in sanity
// check), the single-branch ablations, the three baselines, and two tuned
// alpha/beta variants of the proposed algorithm.
func DefaultCandidates(base core.Params) []Candidate {
	alphaHi, betaHi := base, base
	alphaHi.Alpha *= 2
	betaHi.Beta *= 2
	return []Candidate{
		{Name: "dvgreedy", NewAllocator: func() core.Allocator { return core.NewSolverAllocator() }},
		{Name: "dvgreedy-scan", NewAllocator: func() core.Allocator { return core.DVGreedy{} }},
		{Name: "density-only", NewAllocator: func() core.Allocator { return core.DensityOnly{} }},
		{Name: "value-only", NewAllocator: func() core.Allocator { return core.ValueOnly{} }},
		{Name: "firefly", NewAllocator: func() core.Allocator { return baseline.NewFirefly() }},
		{Name: "pavq", NewAllocator: func() core.Allocator { return baseline.NewPAVQ() }},
		{Name: "uniform", NewAllocator: func() core.Allocator { return baseline.NewUniform() }},
		{Name: "dvgreedy-alpha2x", NewAllocator: func() core.Allocator { return core.NewSolverAllocator() }, Params: &alphaHi},
		{Name: "dvgreedy-beta2x", NewAllocator: func() core.Allocator { return core.NewSolverAllocator() }, Params: &betaHi},
	}
}

// jainIndex is Jain's fairness index over non-negative xs: (sum x)^2 /
// (n * sum x^2), 1 when perfectly equal, 1/n when one user takes all.
// Negative values (a session with net-negative QoE) clamp to zero.
func jainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// RunTournament runs every candidate through the deterministic virtual-time
// engine on the identical workload and ranks them by fitness. Each candidate
// gets a hermetic run: its own allocator, flight recorder and regret
// attributor, with the shared-state observers of the base config (metrics,
// tracer, SLO, breaker) detached so no candidate's run leaks into another.
// The ranking is bit-stable: same workload, same config, same order — ties
// break by candidate name.
func RunTournament(w *Workload, cfg TournamentConfig) (*TournamentResult, error) {
	candidates := cfg.Candidates
	if len(candidates) == 0 {
		candidates = DefaultCandidates(cfg.Sim.withDefaults().Params)
	}
	weights := cfg.Weights
	if weights == (FitnessWeights{}) {
		weights = DefaultFitnessWeights()
	}
	seen := make(map[string]bool, len(candidates))
	result := &TournamentResult{
		HorizonSlots: w.Cfg.HorizonSlots,
		Sessions:     len(w.Sessions),
		Weights:      weights,
	}
	for _, c := range candidates {
		if c.Name == "" || c.NewAllocator == nil {
			return nil, fmt.Errorf("load: tournament candidate needs Name and NewAllocator")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("load: duplicate tournament candidate %q", c.Name)
		}
		seen[c.Name] = true

		simCfg := cfg.Sim
		simCfg.NewAllocator = c.NewAllocator
		simCfg.AllocName = c.Name
		if c.Params != nil {
			simCfg.Params = *c.Params
		}
		// Hermetic run: per-candidate recorder/attributor, shared observers
		// detached.
		simCfg.Metrics, simCfg.Tracer, simCfg.SLO, simCfg.Breaker = nil, nil, nil, nil
		attr := obs.NewRegretAttributor(obs.RegretAttributorOptions{})
		simCfg.Recorder = obs.NewRecorder(obs.RecorderOptions{RingSize: 1, Attributor: attr})
		simCfg.RegretRef = !cfg.SkipRegret

		report, err := Simulate(w, simCfg)
		if err != nil {
			return nil, fmt.Errorf("load: tournament candidate %q: %w", c.Name, err)
		}

		qoe := make([]float64, len(report.Outcomes))
		var qoeSum float64
		for i, o := range report.Outcomes {
			qoe[i] = o.QoE
			qoeSum += o.QoE
		}
		entry := TournamentEntry{
			Name:          c.Name,
			Fairness:      jainIndex(qoe),
			MissRate:      report.AggregateMissRate(),
			Completed:     report.Completed,
			DegradedSlots: report.DegradedSlots,
		}
		if len(qoe) > 0 {
			entry.MeanQoE = qoeSum / float64(len(qoe))
		}
		rep := attr.Report()
		if rep.Slots > 0 {
			entry.MeanRegret = rep.TotalRegret / float64(rep.Slots)
		}
		entry.TotalRegret = rep.TotalRegret
		entry.AttributedFraction = rep.AttributedFraction
		entry.Fitness = weights.QoE*entry.MeanQoE + weights.Fairness*entry.Fairness -
			weights.Miss*entry.MissRate - weights.Regret*entry.MeanRegret
		result.Entries = append(result.Entries, entry)
	}

	sort.SliceStable(result.Entries, func(i, j int) bool {
		a, b := result.Entries[i], result.Entries[j]
		if a.Fitness != b.Fitness {
			return a.Fitness > b.Fitness
		}
		return a.Name < b.Name
	})
	for i := range result.Entries {
		result.Entries[i].Rank = i + 1
	}
	return result, nil
}

// Format renders the ranked tournament table.
func (r *TournamentResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# policy tournament (%d sessions, %d slots)\n",
		r.Sessions, r.HorizonSlots)
	fmt.Fprintf(&b, "fitness = %.3g*qoe + %.3g*fairness - %.3g*miss - %.3g*regret\n",
		r.Weights.QoE, r.Weights.Fairness, r.Weights.Miss, r.Weights.Regret)
	fmt.Fprintf(&b, "%4s  %-18s %10s %10s %10s %10s %12s\n",
		"rank", "policy", "fitness", "mean_qoe", "fairness", "miss_rate", "mean_regret")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "%4d  %-18s %10.4f %10.4f %10.4f %10.4f %12.4f\n",
			e.Rank, e.Name, e.Fitness, e.MeanQoE, e.Fairness, e.MissRate, e.MeanRegret)
	}
	return b.String()
}
