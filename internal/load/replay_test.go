package load

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func churnConfig(seed int64) Config {
	return Config{Shape: Poisson, Seed: seed, HorizonSlots: 600,
		RatePerSec: 12, MeanHoldSec: 2}
}

// TestRecordReplayRoundTrip is the determinism contract: generate with seed S,
// record to JSONL, read back, and the replayed workload must reproduce the
// identical event stream (byte for byte, poses included) and the identical
// simulated QoE report.
func TestRecordReplayRoundTrip(t *testing.T) {
	w, err := Generate(churnConfig(9))
	if err != nil {
		t.Fatal(err)
	}

	var rec bytes.Buffer
	if err := w.WriteJSONL(&rec, true); err != nil {
		t.Fatal(err)
	}
	replayed, err := ReadJSONL(bytes.NewReader(rec.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w.Sessions, replayed.Sessions) {
		t.Fatal("replayed session specs differ from the generated ones")
	}
	if !reflect.DeepEqual(w.Cfg.withDefaults(), replayed.Cfg.withDefaults()) {
		t.Fatal("replayed config differs")
	}

	var rerec bytes.Buffer
	if err := replayed.WriteJSONL(&rerec, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Bytes(), rerec.Bytes()) {
		t.Fatalf("record->replay->record is not byte-identical: %d vs %d bytes",
			rec.Len(), rerec.Len())
	}

	r1, err := Simulate(w, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(replayed, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("replayed workload produced a different simulated QoE report")
	}
	if r1.Completed == 0 {
		t.Fatal("simulation completed no sessions")
	}
}

// TestSameSeedByteIdenticalJSONL pins the generation side: two independent
// Generate calls with the same config must serialize to the same bytes.
func TestSameSeedByteIdenticalJSONL(t *testing.T) {
	var a, b bytes.Buffer
	for i, buf := range []*bytes.Buffer{&a, &b} {
		w, err := Generate(churnConfig(21))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if err := w.WriteJSONL(buf, false); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different JSONL bytes")
	}
}

// TestJSONLEventOrdering checks the documented stream shape: config first,
// then slot-ordered events with arrive < pose < depart inside a slot.
func TestJSONLEventOrdering(t *testing.T) {
	w, err := Generate(Config{Shape: Steady, Sessions: 6, HorizonSlots: 120, MeanHoldSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteJSONL(&buf, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatal("suspiciously short stream")
	}
	kindRank := map[string]int{"arrive": 0, "pose": 1, "depart": 2}
	prevSlot, prevRank := -1, -1
	arrivals, departs, poses := 0, 0, 0
	for i, line := range lines {
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if i == 0 {
			if ev.E != "config" {
				t.Fatalf("first event is %q, want config", ev.E)
			}
			continue
		}
		rank, ok := kindRank[ev.E]
		if !ok {
			t.Fatalf("line %d: unexpected event %q", i+1, ev.E)
		}
		if ev.Slot < prevSlot || (ev.Slot == prevSlot && rank < prevRank) {
			t.Fatalf("line %d: event (%d,%s) out of order after (%d)", i+1, ev.Slot, ev.E, prevSlot)
		}
		prevSlot, prevRank = ev.Slot, rank
		switch ev.E {
		case "arrive":
			arrivals++
		case "depart":
			departs++
		case "pose":
			poses++
		}
	}
	if arrivals != len(w.Sessions) || departs != len(w.Sessions) {
		t.Fatalf("arrivals %d departs %d, want %d each", arrivals, departs, len(w.Sessions))
	}
	wantPoses := 0
	for _, s := range w.Sessions {
		wantPoses += s.Slots()
	}
	if poses != wantPoses {
		t.Fatalf("pose events %d, want one per live session-slot (%d)", poses, wantPoses)
	}
}

func TestReadJSONLRejectsMalformed(t *testing.T) {
	w, err := Generate(Config{Shape: Steady, Sessions: 2, HorizonSlots: 60})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w.WriteJSONL(&buf, false); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"missing config":   strings.Join(strings.Split(good, "\n")[1:], "\n"),
		"duplicate arrive": good + `{"e":"arrive","slot":0,"sess":{"id":0,"arrive":0,"depart":60}}` + "\n",
		"unknown event":    good + `{"e":"teleport","slot":3}` + "\n",
		"bogus depart":     good + `{"e":"depart","slot":3,"id":0}` + "\n",
		"unknown depart":   good + `{"e":"depart","slot":60,"id":99}` + "\n",
		"bad json":         good + "{nope\n",
	}
	for name, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
	if _, err := ReadJSONL(strings.NewReader(good)); err != nil {
		t.Errorf("well-formed stream rejected: %v", err)
	}
}

// TestSimulateDeterministic pins the virtual-time engine itself: same
// workload, same config, same report, and the metrics registry must not
// perturb it.
func TestSimulateDeterministic(t *testing.T) {
	w, err := Generate(churnConfig(33))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Simulate(w, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(w, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("Simulate is not deterministic")
	}
	if r1.Spawned != len(w.Sessions) || r1.Completed != r1.Spawned {
		t.Fatalf("accounting: spawned %d completed %d, want all %d",
			r1.Spawned, r1.Completed, len(w.Sessions))
	}
}
