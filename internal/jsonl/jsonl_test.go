package jsonl

import (
	"strings"
	"testing"
)

type rec struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
}

func validRec(r *rec) error {
	if r.ID == 0 {
		return errZeroID
	}
	return nil
}

var errZeroID = &zeroIDError{}

type zeroIDError struct{}

func (*zeroIDError) Error() string { return "record without id" }

func TestDecodeCleanStream(t *testing.T) {
	in := "{\"id\":1,\"name\":\"a\"}\n\n{\"id\":2,\"name\":\"b\"}\n"
	got, skipped, err := Decode[rec](strings.NewReader(in), validRec)
	if err != nil || skipped != 0 {
		t.Fatalf("err=%v skipped=%d, want nil/0", err, skipped)
	}
	if len(got) != 2 || got[0].ID != 1 || got[1].Name != "b" {
		t.Fatalf("records = %+v", got)
	}
}

// TestDecodeTrailingPartial is the live-file regression test: a truncated
// final line (writer mid-append) is skipped and counted, not fatal.
func TestDecodeTrailingPartial(t *testing.T) {
	for _, tail := range []string{
		"{\"id\":3,\"na",       // torn mid-key
		"{\"id\":0,\"name\":\"x\"}", // parses but fails validation
		"{\"id\":3,\"na\nnot json either",
	} {
		in := "{\"id\":1}\n{\"id\":2}\n" + tail
		got, skipped, err := Decode[rec](strings.NewReader(in), validRec)
		if err != nil {
			t.Fatalf("tail %q: unexpected error %v", tail, err)
		}
		if len(got) != 2 {
			t.Fatalf("tail %q: %d records, want 2", tail, len(got))
		}
		wantSkipped := 1 + strings.Count(tail, "\n")
		if skipped != wantSkipped {
			t.Fatalf("tail %q: skipped = %d, want %d", tail, skipped, wantSkipped)
		}
	}
}

// TestDecodeInteriorCorruption: a bad line followed by a good one is real
// corruption and must fail, naming the bad line.
func TestDecodeInteriorCorruption(t *testing.T) {
	in := "{\"id\":1}\nnot json\n{\"id\":2}\n"
	_, _, err := Decode[rec](strings.NewReader(in), validRec)
	if err == nil {
		t.Fatal("interior corruption decoded without error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name line 2", err)
	}
}

func TestDecodeEmptyAndValidatorless(t *testing.T) {
	got, skipped, err := Decode[rec](strings.NewReader(""), nil)
	if err != nil || skipped != 0 || len(got) != 0 {
		t.Fatalf("empty stream: got=%v skipped=%d err=%v", got, skipped, err)
	}
	got, skipped, err = Decode[rec](strings.NewReader("{\"id\":0}\n"), nil)
	if err != nil || skipped != 0 || len(got) != 1 {
		t.Fatalf("validatorless: got=%v skipped=%d err=%v", got, skipped, err)
	}
}
