// Package jsonl reads line-delimited JSON streams tolerantly.
//
// Both the span exporter and the decision flight recorder write one JSON
// document per line, and both are routinely read from files another process
// is still appending to. A reader that races the writer sees a truncated
// final line (or several, if the writer buffers); treating that as fatal
// makes `collabvr-spans live.jsonl` flaky for no good reason. At the same
// time, corruption in the interior of a file — a bad line followed by more
// good ones — is a real problem worth failing loudly on, not skipping.
//
// Decode implements exactly that policy: interior malformed lines are hard
// errors, a trailing run of malformed or partial lines is skipped and
// counted.
package jsonl

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// MaxLineBytes bounds a single JSONL line (4 MiB, matching the span
// reader's historical limit).
const MaxLineBytes = 1 << 22

// Decode parses a JSONL stream of T. Blank lines are skipped. validate,
// when non-nil, runs on each decoded record; a validation failure is
// treated like a parse failure. The returned skipped count is the number of
// trailing lines dropped as a live writer's partial tail; any bad line with
// a good line after it is a hard error naming the bad line's number.
func Decode[T any](r io.Reader, validate func(*T) error) (records []T, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), MaxLineBytes)
	line := 0
	badLine := 0 // first line of the current run of bad lines
	var badErr error
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec T
		lineErr := json.Unmarshal([]byte(text), &rec)
		if lineErr == nil && validate != nil {
			lineErr = validate(&rec)
		}
		if lineErr != nil {
			if badErr == nil {
				badLine, badErr = line, lineErr
			}
			skipped++
			continue
		}
		if badErr != nil {
			// A well-formed record after a bad line: the bad line was not a
			// partial tail but interior corruption.
			return nil, 0, fmt.Errorf("jsonl: line %d: %w", badLine, badErr)
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("jsonl: read: %w", err)
	}
	return records, skipped, nil
}
