package vrmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestVec3Arithmetic(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, -5, 6}

	if got := v.Add(w); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v, want {5 -3 9}", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v, want {-3 7 -3}", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v, want {2 4 6}", got)
	}
	if got := v.Dot(w); got != 1*4+2*(-5)+3*6 {
		t.Errorf("Dot = %v, want 12", got)
	}
}

func TestVec3Norm(t *testing.T) {
	if got := (Vec3{3, 4, 0}).Norm(); !almostEqual(got, 5) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := (Vec3{1, 1, 1}).Dist(Vec3{1, 1, 1}); !almostEqual(got, 0) {
		t.Errorf("Dist(self) = %v, want 0", got)
	}
}

func TestVec3Lerp(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{10, -10, 4}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v, want %v", got, a)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v, want %v", got, b)
	}
	if got := a.Lerp(b, 0.5); got != (Vec3{5, -5, 2}) {
		t.Errorf("Lerp(0.5) = %v, want {5 -5 2}", got)
	}
}

func TestVec3DistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{ax, ay, az}
		b := Vec3{bx, by, bz}
		d1, d2 := a.Dist(b), b.Dist(a)
		if math.IsNaN(d1) || math.IsInf(d1, 0) {
			return true // degenerate inputs from quick
		}
		return almostEqual(d1, d2) && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVec3TriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz int16) bool {
		a := Vec3{float64(ax), float64(ay), float64(az)}
		b := Vec3{float64(bx), float64(by), float64(bz)}
		c := Vec3{float64(cx), float64(cy), float64(cz)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
