package vrmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalizeAngle(t *testing.T) {
	tests := []struct {
		give float64
		want float64
	}{
		{0, 0},
		{180, -180},
		{-180, -180},
		{190, -170},
		{-190, 170},
		{360, 0},
		{720, 0},
		{-360, 0},
		{539, 179},
		{541, -179},
	}
	for _, tt := range tests {
		if got := NormalizeAngle(tt.give); !almostEqual(got, tt.want) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestNormalizeAngleRangeProperty(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e12 {
			return true
		}
		got := NormalizeAngle(a)
		return got >= -180 && got < 180
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleDiff(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{10, 350, 20},
		{350, 10, -20},
		{-170, 170, 20},
		{90, 90, 0},
	}
	for _, tt := range tests {
		if got := AngleDiff(tt.a, tt.b); !almostEqual(got, tt.want) {
			t.Errorf("AngleDiff(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestPoseNormalize(t *testing.T) {
	p := Pose{Yaw: 400, Pitch: 120, Roll: -500}.Normalize()
	if !almostEqual(p.Yaw, 40) {
		t.Errorf("Yaw = %v, want 40", p.Yaw)
	}
	if !almostEqual(p.Pitch, 90) {
		t.Errorf("Pitch = %v, want 90", p.Pitch)
	}
	if !almostEqual(p.Roll, -140) {
		t.Errorf("Roll = %v, want -140", p.Roll)
	}
}

func TestFoVExpand(t *testing.T) {
	f := FoV{HDeg: 120, VDeg: 60}.Expand(15)
	if f.HDeg != 150 || f.VDeg != 90 {
		t.Errorf("Expand(15) = %+v, want {150 90}", f)
	}
	f = FoV{HDeg: 350, VDeg: 170}.Expand(30)
	if f.HDeg != 360 || f.VDeg != 180 {
		t.Errorf("Expand saturation = %+v, want {360 180}", f)
	}
}

func TestRectWrapping(t *testing.T) {
	// View straight at the +/-180 seam: the yaw interval must wrap.
	r := Rect(Pose{Yaw: 175}, FoV{HDeg: 40, VDeg: 60})
	if !(r.YawLo > r.YawHi) {
		t.Fatalf("expected wrapped rect, got %+v", r)
	}
	if !r.ContainsYaw(179) || !r.ContainsYaw(-179) {
		t.Errorf("wrapped rect should contain both sides of the seam: %+v", r)
	}
	if r.ContainsYaw(0) {
		t.Errorf("wrapped rect should not contain yaw 0: %+v", r)
	}
}

func TestRectContainsCenterProperty(t *testing.T) {
	f := func(yaw16, pitch16 int16) bool {
		yaw := float64(yaw16) / 100
		pitch := math.Mod(float64(pitch16)/400, 80)
		p := Pose{Yaw: yaw, Pitch: pitch}.Normalize()
		r := Rect(p, FoV{HDeg: 100, VDeg: 60})
		return r.ContainsYaw(p.Yaw) && p.Pitch >= r.PitchLo-1e-9 && p.Pitch <= r.PitchHi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCovers(t *testing.T) {
	outer := Rect(Pose{Yaw: 0, Pitch: 0}, FoV{HDeg: 150, VDeg: 90})
	inner := Rect(Pose{Yaw: 10, Pitch: 5}, FoV{HDeg: 120, VDeg: 60})
	if !outer.Covers(inner) {
		t.Errorf("outer %+v should cover inner %+v", outer, inner)
	}

	far := Rect(Pose{Yaw: 90, Pitch: 0}, FoV{HDeg: 120, VDeg: 60})
	if outer.Covers(far) {
		t.Errorf("outer %+v should not cover far %+v", outer, far)
	}
}

func TestCoversAcrossSeam(t *testing.T) {
	outer := Rect(Pose{Yaw: 178, Pitch: 0}, FoV{HDeg: 160, VDeg: 100})
	inner := Rect(Pose{Yaw: -178, Pitch: 3}, FoV{HDeg: 120, VDeg: 60})
	if !outer.Covers(inner) {
		t.Errorf("outer %+v should cover inner %+v across the seam", outer, inner)
	}
}

func TestCoversFullCircle(t *testing.T) {
	outer := Rect(Pose{}, FoV{HDeg: 360, VDeg: 180})
	inner := Rect(Pose{Yaw: 123, Pitch: -31}, FoV{HDeg: 120, VDeg: 60})
	if !outer.Covers(inner) {
		t.Errorf("full panorama should cover any view")
	}
}

// A margin-expanded rect around the same pose must always cover the
// unexpanded rect; this is the geometric core of the paper's FoV margin.
func TestExpandCoversProperty(t *testing.T) {
	f := func(yaw16, pitch16 int16, margin8 uint8) bool {
		p := Pose{
			Yaw:   float64(yaw16) / 100,
			Pitch: math.Mod(float64(pitch16)/500, 60),
		}.Normalize()
		fov := FoV{HDeg: 110, VDeg: 60}
		margin := float64(margin8%45) + 1
		outer := Rect(p, fov.Expand(margin))
		inner := Rect(p, fov)
		return outer.Covers(inner)
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestOverlapSpans(t *testing.T) {
	r := Rect(Pose{Yaw: 170}, FoV{HDeg: 60, VDeg: 60}) // wraps: [140, -160]
	if !r.OverlapsYawSpan(-180, -170) {
		t.Errorf("should overlap [-180,-170]")
	}
	if !r.OverlapsYawSpan(150, 180) {
		t.Errorf("should overlap [150,180]")
	}
	if r.OverlapsYawSpan(-90, 90) {
		t.Errorf("should not overlap [-90,90]")
	}
	if !r.OverlapsPitchSpan(-90, 0) {
		t.Errorf("should overlap pitch [-90,0]")
	}
}
