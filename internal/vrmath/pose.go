package vrmath

import "math"

// Pose is a 6-degree-of-freedom user pose: 3 DoF of virtual position and
// 3 DoF of head orientation, as in Section II of the paper.
type Pose struct {
	Pos   Vec3    // virtual location, metres
	Yaw   float64 // horizontal view direction, degrees in [-180, 180)
	Pitch float64 // vertical view direction, degrees in [-90, 90]
	Roll  float64 // head roll, degrees in [-180, 180)
}

// NormalizeAngle wraps an angle in degrees into [-180, 180).
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a+180, 360)
	if a < 0 {
		a += 360
	}
	return a - 180
}

// ClampPitch restricts a pitch angle to [-90, 90].
func ClampPitch(p float64) float64 {
	if p > 90 {
		return 90
	}
	if p < -90 {
		return -90
	}
	return p
}

// AngleDiff returns the signed smallest difference a-b wrapped into
// [-180, 180).
func AngleDiff(a, b float64) float64 { return NormalizeAngle(a - b) }

// Normalize returns the pose with yaw and roll wrapped into [-180, 180) and
// pitch clamped to [-90, 90].
func (p Pose) Normalize() Pose {
	return Pose{
		Pos:   p.Pos,
		Yaw:   NormalizeAngle(p.Yaw),
		Pitch: ClampPitch(p.Pitch),
		Roll:  NormalizeAngle(p.Roll),
	}
}

// FoV is an angular field-of-view rectangle centred on a view direction.
type FoV struct {
	HDeg float64 // total horizontal extent, degrees
	VDeg float64 // total vertical extent, degrees
}

// DefaultFoV matches the paper's observation that a user sees about 20% of
// the panoramic view: 120 degrees of 360 horizontally and 60 of 180
// vertically is 120*60/(360*180) ~= 11%, plus margin lands near 20%.
var DefaultFoV = FoV{HDeg: 120, VDeg: 60}

// Expand grows the field of view by margin degrees on every side, as the
// paper does to tolerate head-orientation prediction error. The vertical
// extent saturates at 180 degrees and the horizontal extent at 360.
func (f FoV) Expand(marginDeg float64) FoV {
	h := f.HDeg + 2*marginDeg
	v := f.VDeg + 2*marginDeg
	if h > 360 {
		h = 360
	}
	if v > 180 {
		v = 180
	}
	return FoV{HDeg: h, VDeg: v}
}

// ViewRect is the equirectangular footprint of a field of view centred at
// (yaw, pitch): yaw spans [YawLo, YawHi] (possibly wrapping around ±180) and
// pitch spans [PitchLo, PitchHi].
type ViewRect struct {
	YawLo, YawHi     float64
	PitchLo, PitchHi float64
}

// Rect computes the equirectangular footprint of the field of view f centred
// on the view direction of pose p.
func Rect(p Pose, f FoV) ViewRect {
	halfH := f.HDeg / 2
	halfV := f.VDeg / 2
	if f.HDeg >= 360 {
		// Full panorama: represent explicitly as [-180, 180] so that the
		// span arithmetic does not collapse to zero width.
		return ViewRect{
			YawLo:   -180,
			YawHi:   180,
			PitchLo: ClampPitch(p.Pitch - halfV),
			PitchHi: ClampPitch(p.Pitch + halfV),
		}
	}
	return ViewRect{
		YawLo:   NormalizeAngle(p.Yaw - halfH),
		YawHi:   NormalizeAngle(p.Yaw + halfH),
		PitchLo: ClampPitch(p.Pitch - halfV),
		PitchHi: ClampPitch(p.Pitch + halfV),
	}
}

// ContainsYaw reports whether the rect's (possibly wrapping) yaw interval
// contains the given yaw.
func (r ViewRect) ContainsYaw(yaw float64) bool {
	yaw = NormalizeAngle(yaw)
	if r.YawLo <= r.YawHi {
		return yaw >= r.YawLo && yaw <= r.YawHi
	}
	// Wrapped interval, e.g. [150, -150).
	return yaw >= r.YawLo || yaw <= r.YawHi
}

// OverlapsYawSpan reports whether the rect's yaw interval overlaps the span
// [lo, hi] (non-wrapping, lo <= hi).
func (r ViewRect) OverlapsYawSpan(lo, hi float64) bool {
	if r.YawLo <= r.YawHi {
		return r.YawLo <= hi && lo <= r.YawHi
	}
	// Wrapped: the rect covers [YawLo, 180) and [-180, YawHi].
	return lo <= r.YawHi || hi >= r.YawLo
}

// OverlapsPitchSpan reports whether the rect's pitch interval overlaps the
// span [lo, hi].
func (r ViewRect) OverlapsPitchSpan(lo, hi float64) bool {
	return r.PitchLo <= hi && lo <= r.PitchHi
}

// Covers reports whether rect r fully contains rect inner. It is used to
// decide whether a delivered (margin-expanded) portion covers the actual
// field of view, i.e. the indicator 1_n(t) of the paper.
func (r ViewRect) Covers(inner ViewRect) bool {
	if !coversYaw(r, inner) {
		return false
	}
	return r.PitchLo <= inner.PitchLo && r.PitchHi >= inner.PitchHi
}

func coversYaw(outer, inner ViewRect) bool {
	// Full-circle outer covers everything.
	if width(outer) >= 360-1e-9 {
		return true
	}
	if width(inner) > width(outer) {
		return false
	}
	return outer.ContainsYaw(inner.YawLo) && outer.ContainsYaw(inner.YawHi)
}

func width(r ViewRect) float64 {
	if r.YawHi-r.YawLo >= 360 {
		return 360
	}
	w := NormalizeAngle(r.YawHi - r.YawLo)
	if w < 0 {
		w += 360
	}
	return w
}
