// Package vrmath provides the small geometric vocabulary shared by the VR
// pipeline: 3-D vectors, 6-DoF poses, angle arithmetic on the equirectangular
// sphere, and field-of-view rectangles.
//
// Angles are expressed in degrees throughout. Yaw is the horizontal view
// direction in [-180, 180) with 0 facing the centre of the equirectangular
// texture; pitch is the vertical direction in [-90, 90] with positive up.
package vrmath

import "math"

// Vec3 is a point or direction in the virtual world, in metres.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Lerp linearly interpolates between v (t=0) and w (t=1).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		X: v.X + (w.X-v.X)*t,
		Y: v.Y + (w.Y-v.Y)*t,
		Z: v.Z + (w.Z-v.Z)*t,
	}
}
