// Package repro's benchmark harness regenerates every figure of the paper's
// evaluation as a testing.B benchmark. Each benchmark runs the figure's
// workload and reports the headline quantity (mean QoE, mean RTT, ...) via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as the experiment
// driver. Benchmark sizes are scaled down from the paper's (300 s x 100
// runs) so a full sweep stays laptop-friendly; cmd/collabvr-bench -full
// runs the paper-scale versions.
package repro

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/tiles"
)

// BenchmarkFig1aTileSize regenerates Fig. 1a: the convex tile-size-vs-
// quality curves of the content size model.
func BenchmarkFig1aTileSize(b *testing.B) {
	model := tiles.NewSizeModel(1)
	var sum float64
	for i := 0; i < b.N; i++ {
		cell := tiles.CellID{X: int32(i % 100), Z: int32(i % 37)}
		for q := 1; q <= tiles.Levels; q++ {
			sum += model.TileRate(cell, tiles.TileID(i%4), q)
		}
	}
	b.ReportMetric(sum/float64(b.N)/tiles.Levels, "meanMbps")
}

// BenchmarkFig1bRTT regenerates Fig. 1b: RTT samples from the M/M/1 queue
// under a 15 Mbps cap at a 12 Mbps sending rate.
func BenchmarkFig1bRTT(b *testing.B) {
	q := netem.NewQueueSim(15)
	rng := rand.New(rand.NewSource(1))
	var mean float64
	for i := 0; i < b.N; i++ {
		mean = q.MeanRTT(12, 5000, rng)
	}
	b.ReportMetric(mean, "meanRTTms")
}

// benchSim runs one scaled-down Section IV campaign and reports the mean
// QoE of the proposed algorithm.
func benchSim(b *testing.B, users int, includeOptimal bool) {
	b.Helper()
	cfg := sim.DefaultConfig(users)
	cfg.Seconds = 5
	cfg.Runs = 2
	cfg.IncludeOptimal = includeOptimal
	var qoe float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		results, err := sim.Run(cfg, sim.StandardAlgorithms(cfg.IncludeOptimal))
		if err != nil {
			b.Fatal(err)
		}
		qoe = metrics.NewCDF(results[0].QoE).Mean()
	}
	b.ReportMetric(qoe, "proposedQoE")
}

// BenchmarkFig2Sim5Users regenerates Fig. 2: the 5-user trace-based
// simulation including the brute-force per-slot optimum.
func BenchmarkFig2Sim5Users(b *testing.B) { benchSim(b, 5, true) }

// BenchmarkFig3Sim30Users regenerates Fig. 3: the 30-user trace-based
// simulation (no brute force at this scale).
func BenchmarkFig3Sim30Users(b *testing.B) { benchSim(b, 30, false) }

// benchTestbed runs one scaled-down Section VI real-system experiment (live
// loopback sockets) with the proposed algorithm and reports its QoE.
func benchTestbed(b *testing.B, setup testbed.Setup) {
	b.Helper()
	cfg := testbed.Config{
		Setup:        setup,
		Slots:        150,
		SlotDuration: 4 * time.Millisecond,
		Seed:         1,
		Params:       core.DefaultSystemParams(),
	}
	var qoe float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := testbed.Run(cfg, "proposed", core.DVGreedy{})
		if err != nil {
			b.Fatal(err)
		}
		qoe = res.Aggregate.QoE
	}
	b.ReportMetric(qoe, "proposedQoE")
}

// BenchmarkFig7Testbed8Users regenerates Fig. 7: setup 1 (8 users behind
// one router) on the in-process real-system testbed.
func BenchmarkFig7Testbed8Users(b *testing.B) { benchTestbed(b, testbed.Setup1()) }

// BenchmarkFig8Testbed15Users regenerates Fig. 8: setup 2 (15 users behind
// two routers with interference) on the in-process testbed.
func BenchmarkFig8Testbed15Users(b *testing.B) { benchTestbed(b, testbed.Setup2()) }

// benchProblem builds a representative 30-user per-slot allocation problem.
func benchProblem(rng *rand.Rand, users int) *core.SlotProblem {
	ladder := []float64{8, 13, 21, 34, 55, 89}
	ins := make([]core.UserInput, users)
	for i := range ins {
		scale := 0.6 + rng.Float64()
		cap_ := 20 + rng.Float64()*80
		rates := make([]float64, len(ladder))
		for q, r := range ladder {
			rates[q] = r * scale
		}
		ins[i] = core.UserInput{
			Rate:  rates,
			Delay: netem.DelayTableMs(rates, cap_, 1000.0/60),
			Delta: 0.8 + rng.Float64()*0.2,
			MeanQ: rng.Float64() * 6,
			Cap:   cap_,
		}
	}
	return &core.SlotProblem{T: 100, Budget: 36 * float64(users), Users: ins}
}

// BenchmarkAllocatorPerSlot measures the per-slot decision cost of each
// algorithm at the paper's 30-user scale — the number that determines
// whether the allocator fits in a 16.7 ms slot.
func BenchmarkAllocatorPerSlot(b *testing.B) {
	params := core.DefaultSimParams()
	algs := []struct {
		name string
		mk   func() core.Allocator
	}{
		{"dvgreedy", func() core.Allocator { return core.DVGreedy{} }},
		{"dvgreedy-solver", func() core.Allocator { return core.NewSolverAllocator() }},
		{"density", func() core.Allocator { return core.DensityOnly{} }},
		{"value", func() core.Allocator { return core.ValueOnly{} }},
		{"firefly", func() core.Allocator { return baseline.NewFirefly() }},
		{"pavq", func() core.Allocator { return baseline.NewPAVQ() }},
	}
	for _, a := range algs {
		b.Run(a.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			p := benchProblem(rng, 30)
			alloc := a.mk()
			b.ResetTimer()
			var value float64
			for i := 0; i < b.N; i++ {
				value = alloc.Allocate(params, p).Value
			}
			b.ReportMetric(value, "objective")
		})
	}
}

// BenchmarkOptimalPerSlot measures the brute-force optimum at the 5-user
// scale where the paper uses it (L^N assignments).
func BenchmarkOptimalPerSlot(b *testing.B) {
	params := core.DefaultSimParams()
	rng := rand.New(rand.NewSource(1))
	p := benchProblem(rng, 5)
	b.ResetTimer()
	var value float64
	for i := 0; i < b.N; i++ {
		value = core.Optimal{}.Allocate(params, p).Value
	}
	b.ReportMetric(value, "objective")
}

// BenchmarkObsDisabledOverhead measures the disabled observability path: a
// nil registry/recorder must cost a pointer check per event and 0 allocs/op,
// so every pipeline layer can stay instrumented unconditionally. Measured:
// ~1 ns/op, 0 B/op, 0 allocs/op (see also internal/obs/obs_bench_test.go
// for the per-instrument breakdown).
func BenchmarkObsDisabledOverhead(b *testing.B) {
	var reg *obs.Registry
	var rec *obs.Recorder
	c := reg.Counter("collabvr_server_slots_total")
	h := reg.Histogram("collabvr_server_slot_decision_ms", obs.DefaultLatencyBuckets())
	slot := &obs.SlotRecord{Algorithm: "proposed", Levels: []int{1, 2, 3, 4, 5}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(float64(i % 16))
		if rec.Enabled() {
			b.Fatal("nil recorder enabled")
		}
		rec.Record(slot)
	}
}

// BenchmarkTheorem1Gap measures how close Algorithm 1 lands to the
// fractional upper bound V_p across random instances (Theorem 1 guarantees
// at least half).
func BenchmarkTheorem1Gap(b *testing.B) {
	params := core.DefaultSimParams()
	rng := rand.New(rand.NewSource(1))
	var ratio float64
	for i := 0; i < b.N; i++ {
		p := benchProblem(rng, 8)
		got := core.DVGreedy{}.Allocate(params, p)
		if vp := core.FractionalUpperBound(params, p); vp > 0 {
			ratio = got.Value / vp
		}
	}
	b.ReportMetric(ratio, "ratioToVp")
}
