package main

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
)

func TestAllocatorByName(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{"dvgreedy", "dvgreedy"},
		{"proposed", "dvgreedy"},
		{"density", "density"},
		{"value", "value"},
		{"optimal", "optimal"},
		{"firefly", "firefly"},
		{"pavq", "pavq"},
	}
	for _, tt := range tests {
		alloc, err := allocatorByName(tt.give)
		if err != nil {
			t.Fatalf("%s: %v", tt.give, err)
		}
		if alloc.Name() != tt.want {
			t.Errorf("allocatorByName(%q).Name() = %q, want %q", tt.give, alloc.Name(), tt.want)
		}
	}
	if _, err := allocatorByName("nope"); err == nil {
		t.Error("unknown allocator should error")
	}
	// Spot check types.
	if a, _ := allocatorByName("pavq"); a == (core.Allocator)(nil) {
		t.Error("nil allocator")
	}
	var _ = baseline.NewPAVQ()
}

func TestServerRunsForConfiguredSlots(t *testing.T) {
	err := run([]string{
		"-tcp", "127.0.0.1:0", "-udp", "127.0.0.1:0",
		"-slots", "5", "-slotms", "2", "-algo", "dvgreedy",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestServerBadAlgo(t *testing.T) {
	if err := run([]string{"-algo", "nope"}); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestServerBadFlags(t *testing.T) {
	if err := run([]string{"-slots", "x"}); err == nil {
		t.Fatal("bad flag should error")
	}
}
