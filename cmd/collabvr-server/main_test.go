package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/motion"
	"repro/internal/obs"
)

func TestAllocatorByName(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{"dvgreedy", "dvgreedy"},
		{"proposed", "dvgreedy"},
		{"density", "density"},
		{"value", "value"},
		{"optimal", "optimal"},
		{"firefly", "firefly"},
		{"pavq", "pavq"},
	}
	for _, tt := range tests {
		alloc, err := allocatorByName(tt.give)
		if err != nil {
			t.Fatalf("%s: %v", tt.give, err)
		}
		if alloc.Name() != tt.want {
			t.Errorf("allocatorByName(%q).Name() = %q, want %q", tt.give, alloc.Name(), tt.want)
		}
	}
	if _, err := allocatorByName("nope"); err == nil {
		t.Error("unknown allocator should error")
	}
	// Spot check types.
	if a, _ := allocatorByName("pavq"); a == (core.Allocator)(nil) {
		t.Error("nil allocator")
	}
	var _ = baseline.NewPAVQ()
}

func TestServerRunsForConfiguredSlots(t *testing.T) {
	err := run([]string{
		"-tcp", "127.0.0.1:0", "-udp", "127.0.0.1:0",
		"-slots", "5", "-slotms", "2", "-algo", "dvgreedy",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestServerBadAlgo(t *testing.T) {
	if err := run([]string{"-algo", "nope"}); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestServerBadFlags(t *testing.T) {
	if err := run([]string{"-slots", "x"}); err == nil {
		t.Fatal("bad flag should error")
	}
}

// freePort reserves an ephemeral loopback port and returns it. The listener
// is closed before returning, so a tiny race with other tests is possible but
// harmless on loopback.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestServerObservabilityEndpointsWhileStreaming starts the full binary
// entrypoint with -http, streams to it with a real client, and fetches
// /metrics and /debug/slots mid-stream.
func TestServerObservabilityEndpointsWhileStreaming(t *testing.T) {
	tcpAddr, udpAddr, httpAddr := freePort(t), freePort(t), freePort(t)

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-tcp", tcpAddr, "-udp", udpAddr, "-http", httpAddr,
			"-slots", "600", "-slotms", "2", "-algo", "dvgreedy",
		})
	}()

	// Stream a real client in the background while we poll the endpoints.
	clientDone := make(chan error, 1)
	go func() {
		ccfg := client.DefaultConfig(1, tcpAddr,
			motion.Generate(motion.Scenes()[0], 1, 700, 500, 3))
		ccfg.SlotDuration = 2 * time.Millisecond
		ccfg.Slots = 250
		for i := 0; i < 100; i++ { // wait for the control listener
			if conn, err := net.Dial("tcp", tcpAddr); err == nil {
				conn.Close()
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		_, err := client.Run(ccfg)
		clientDone <- err
	}()

	// Poll /metrics until the slot loop is visibly serving the client.
	var metricsBody string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + httpAddr + "/metrics")
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			metricsBody = string(b)
			if strings.Contains(metricsBody, "collabvr_server_tiles_sent_total") &&
				!strings.Contains(metricsBody, "collabvr_server_tiles_sent_total 0\n") {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, want := range []string{
		"collabvr_server_slots_total",
		"collabvr_server_sessions_active 1",
		"collabvr_server_alloc_level_count",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metricsBody)
		}
	}

	resp, err := http.Get("http://" + httpAddr + "/debug/slots?n=8")
	if err != nil {
		t.Fatal(err)
	}
	var slots struct {
		Summary obs.Summary      `json:"summary"`
		Recent  []obs.SlotRecord `json:"recent"`
	}
	err = json.NewDecoder(resp.Body).Decode(&slots)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if slots.Summary.Records == 0 || len(slots.Recent) == 0 {
		t.Fatalf("/debug/slots empty mid-stream: %+v", slots.Summary)
	}
	if slots.Recent[0].Algorithm != "dvgreedy" {
		t.Errorf("recent record = %+v", slots.Recent[0])
	}

	if err := <-clientDone; err != nil {
		t.Fatalf("client: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}
