// Command collabvr-server runs a standalone edge server that any number of
// collabvr-client processes can join. It is the deployable counterpart of
// the paper's Java server: pose ingest over TCP, quality allocation with
// the chosen algorithm each slot, RTP-like tile delivery over UDP.
//
// Usage:
//
//	collabvr-server -tcp 127.0.0.1:7400 -udp 127.0.0.1:7401 -algo dvgreedy -slots 3600
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/baseline"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "collabvr-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("collabvr-server", flag.ContinueOnError)
	var (
		tcpAddr    = fs.String("tcp", "127.0.0.1:7400", "control (TCP) listen address")
		udpAddr    = fs.String("udp", "127.0.0.1:7401", "data (UDP) bind address")
		algo       = fs.String("algo", "dvgreedy", "allocator: dvgreedy, dvgreedy-scan, density, value, optimal, firefly, pavq")
		budget     = fs.Float64("budget", 400, "server throughput budget B(t) in Mbps")
		slots      = fs.Int("slots", 0, "stop after this many slots (0 = run until interrupted)")
		slotMs     = fs.Float64("slotms", 1000.0/60, "slot duration in milliseconds")
		alpha      = fs.Float64("alpha", 0.1, "QoE delay weight")
		beta       = fs.Float64("beta", 0.5, "QoE variance weight")
		httpAddr   = fs.String("http", "", "observability HTTP listen address serving /metrics and /debug/slots (empty = disabled)")
		ringSize   = fs.Int("slots-ring", 1024, "flight-recorder ring capacity (records kept for /debug/slots, which also reports capacity and drop count)")
		ringOld    = fs.Int("trace-ring", 0, "deprecated alias for -slots-ring")
		counterK   = fs.Int("counterfactual-k", 0, "record the top-K unchosen upgrades per slot (0 = off; served on /debug/slots and /debug/regret)")
		debug      = fs.Bool("debug", false, "expose pprof, /debug/runtime and runtime gauges on the -http mux")
		spanOut    = fs.String("span-out", "", "write server-side request spans to this JSONL file (analyze with collabvr-spans)")
		spanSample = fs.Uint64("span-sample", 1, "keep 1 in N traces (deterministic by trace ID; 0 or 1 = all)")
		traceEpoch = fs.Uint64("trace-epoch", 0, "trace-ID epoch salt (clients stitching must share it)")
		sloOn      = fs.Bool("slo", false, "track per-session QoE SLO burn rates (served on /debug/slo with -http)")
		healthOn   = fs.Bool("health", false, "sample metrics/SLO into the multi-resolution health store each slot (served on /debug/health with -http; implies -slo)")
		healthOut  = fs.String("health-out", "", "write the health time-series export to this JSONL file on exit (implies -health)")
		healthEvry = fs.Int("health-every", 1, "health sampling cadence in slots")
		chaosPath  = fs.String("chaos", "", "chaos profile JSON; server-pipeline faults (server-stall, slow-ack) apply here, packet faults need the loadgen live harness")
		breakerOn  = fs.Bool("breaker", false, "SLO-driven per-session circuit breaker: cap quality on warn/page instead of dropping users (implies -slo)")
		retryOn    = fs.Bool("retry", false, "bound NACK retransmissions with full-jitter backoff and abandonment")
		drainT     = fs.Duration("drain-timeout", 5*time.Second, "on SIGTERM/SIGINT, drain in-flight sessions for up to this long before closing")
		verbose    = fs.Bool("v", false, "verbose logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	alloc, err := allocatorByName(*algo)
	if err != nil {
		return err
	}

	cfg := server.DefaultConfig(alloc)
	cfg.TCPAddr = *tcpAddr
	cfg.UDPAddr = *udpAddr
	cfg.BudgetMbps = *budget
	cfg.TotalSlots = *slots
	cfg.SlotDuration = time.Duration(*slotMs * float64(time.Millisecond))
	cfg.Params.Alpha = *alpha
	cfg.Params.Beta = *beta
	if *verbose {
		cfg.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}

	var spanExp *trace.Exporter
	if *spanOut != "" {
		f, err := os.Create(*spanOut)
		if err != nil {
			return fmt.Errorf("span export: %w", err)
		}
		defer f.Close()
		spanExp = trace.NewExporter(trace.ExporterOptions{Writer: f})
		cfg.Tracer = trace.New(trace.Options{Sample: *spanSample, Exporter: spanExp})
		cfg.TraceEpoch = *traceEpoch
	}
	wantHealth := *healthOn || *healthOut != ""
	if *sloOn || *breakerOn || wantHealth {
		if cfg.Metrics == nil {
			cfg.Metrics = obs.NewRegistry()
		}
		cfg.SLO = obs.NewSLOMonitor(obs.DefaultSLOConfig(), cfg.Metrics)
	}
	var healthStore *tsdb.Store
	if wantHealth {
		healthStore = tsdb.New(tsdb.Options{})
		cfg.Health = tsdb.NewSampler(tsdb.SamplerOptions{
			Store:      healthStore,
			Registry:   cfg.Metrics,
			SLO:        cfg.SLO,
			EverySlots: *healthEvry,
		})
	}
	if *breakerOn {
		bcfg := obs.DefaultBreakerConfig()
		bcfg.Levels = cfg.Params.Levels
		cfg.Breaker = obs.NewBreaker(bcfg, cfg.Metrics)
	}
	if *retryOn {
		cfg.RetryPolicy = transport.DefaultRetryPolicy(cfg.SlotDuration)
	}
	if *chaosPath != "" {
		prof, err := chaos.LoadProfile(*chaosPath)
		if err != nil {
			return err
		}
		cfg.Chaos = chaos.NewServerInjector(prof)
		if prof.HasSessionFaults() {
			fmt.Fprintln(os.Stderr, "collabvr-server: note: profile contains packet/bandwidth faults;"+
				" only server-pipeline faults (server-stall, slow-ack) inject here")
		}
	}

	var rec *obs.Recorder
	if *httpAddr != "" {
		if cfg.Metrics == nil {
			cfg.Metrics = obs.NewRegistry()
		}
		ring := *ringSize
		if *ringOld > 0 {
			ring = *ringOld
		}
		attr := obs.NewRegretAttributor(obs.RegretAttributorOptions{Registry: cfg.Metrics})
		rec = obs.NewRecorder(obs.RecorderOptions{RingSize: ring, Attributor: attr})
		cfg.Recorder = rec
		cfg.CounterfactualK = *counterK
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("observability listen: %w", err)
		}
		defer ln.Close()
		mopts := obs.MuxOptions{SLO: cfg.SLO, Regret: attr, Debug: *debug}
		if healthStore != nil {
			mopts.Health = tsdb.Handler(healthStore, nil)
		}
		go http.Serve(ln, obs.NewMuxOpts(cfg.Metrics, rec, mopts))
		fmt.Printf("collabvr-server: observability on http://%s/metrics, /debug/slots and /debug/regret\n",
			ln.Addr())
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("collabvr-server: control %s, algorithm %s, budget %g Mbps\n",
		srv.ControlAddr(), *algo, *budget)

	// Crash-safe lifecycle: SIGTERM/SIGINT triggers a graceful drain —
	// in-flight sessions get up to -drain-timeout to flush and depart before
	// the sockets close, so clients are not stranded on half-delivered
	// frames.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigCh)
	select {
	case <-srv.Done():
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "collabvr-server: %v: draining (timeout %s)\n", sig, *drainT)
		if !srv.Drain(*drainT) {
			fmt.Fprintln(os.Stderr, "collabvr-server: drain timed out with unflushed sessions")
		}
	}
	stats := srv.Stats()
	if err := srv.Close(); err != nil {
		return err
	}
	fmt.Printf("%-6s %8s %8s %9s %10s %8s %8s\n",
		"user", "slots", "tiles", "skipped", "bytes", "level", "est")
	for _, st := range stats {
		fmt.Printf("%-6d %8d %8d %9d %10d %8.2f %8.1f\n",
			st.User, st.SlotsServed, st.TilesSent, st.TilesSkipped,
			st.BytesSent, st.MeanLevel, st.EstMbps)
	}
	if rec != nil && rec.Records() > 0 {
		fmt.Println()
		fmt.Print(rec.Summary().Format())
	}
	if spanExp != nil {
		if err := spanExp.Close(); err != nil {
			return fmt.Errorf("span export: %w", err)
		}
		fmt.Printf("spans: exported %d dropped %d to %s\n",
			spanExp.Exported(), spanExp.Dropped(), *spanOut)
	}
	if *healthOut != "" {
		f, err := os.Create(*healthOut)
		if err != nil {
			return fmt.Errorf("health export: %w", err)
		}
		err = healthStore.WriteJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("health export: %w", err)
		}
		fmt.Printf("health: exported %d series to %s\n", healthStore.Len(), *healthOut)
	}
	return nil
}

func allocatorByName(name string) (core.Allocator, error) {
	switch name {
	case "dvgreedy", "proposed":
		return core.NewSolverAllocator(), nil
	case "dvgreedy-scan":
		// The original rescan engine, kept for differential comparison.
		return core.DVGreedy{}, nil
	case "density":
		return core.DensityOnly{}, nil
	case "value":
		return core.ValueOnly{}, nil
	case "optimal":
		return core.Optimal{}, nil
	case "firefly":
		return baseline.NewFirefly(), nil
	case "pavq":
		return baseline.NewPAVQ(), nil
	default:
		return nil, fmt.Errorf("unknown allocator %q", name)
	}
}
