// Command collabvr-client emulates one commodity mobile device: it joins a
// collabvr-server, replays a generated (or CSV-loaded) motion trace,
// receives and displays the tile stream, and prints its QoE report when the
// server ends the session.
//
// Usage:
//
//	collabvr-client -server 127.0.0.1:7400 -user 0
//	collabvr-client -server 127.0.0.1:7400 -user 1 -trace traces/motion-user01.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/motion"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "collabvr-client:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("collabvr-client", flag.ContinueOnError)
	var (
		serverAddr = fs.String("server", "127.0.0.1:7400", "server control (TCP) address")
		user       = fs.Uint("user", 0, "user id")
		tracePath  = fs.String("trace", "", "motion trace CSV (empty = generate)")
		scene      = fs.Int("scene", 0, "scene profile for generated traces (0 or 1)")
		slotMs     = fs.Float64("slotms", 1000.0/60, "slot duration in milliseconds (must match server)")
		seconds    = fs.Float64("seconds", 300, "generated trace length")
		seed       = fs.Int64("seed", 1, "generation seed")
		ram        = fs.Int("ram", 512, "client RAM threshold in tiles")
		spanOut    = fs.String("span-out", "", "write client-side request spans to this JSONL file (merge with the server's via collabvr-spans a.jsonl b.jsonl)")
		spanSample = fs.Uint64("span-sample", 1, "keep 1 in N traces (deterministic by trace ID; 0 or 1 = all)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var mt motion.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		mt, err = motion.ReadCSV(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		fps := 1000 / *slotMs
		slots := int(*seconds * fps)
		scenes := motion.Scenes()
		mt = motion.Generate(scenes[*scene%2], int(*user), slots, fps, *seed)
	}

	cfg := client.DefaultConfig(uint32(*user), *serverAddr, mt)
	cfg.SlotDuration = time.Duration(*slotMs * float64(time.Millisecond))
	cfg.RAMThreshold = *ram
	// Bound the run to the trace horizon so the client leaves on its own
	// after -seconds instead of waiting for the server to close.
	cfg.Slots = len(mt)

	var spanExp *trace.Exporter
	if *spanOut != "" {
		f, err := os.Create(*spanOut)
		if err != nil {
			return fmt.Errorf("span export: %w", err)
		}
		defer f.Close()
		spanExp = trace.NewExporter(trace.ExporterOptions{Writer: f})
		cfg.Tracer = trace.New(trace.Options{Sample: *spanSample, Exporter: spanExp})
	}

	fmt.Printf("collabvr-client: user %d joining %s (%d-slot trace)\n",
		*user, *serverAddr, len(mt))
	res, err := client.Run(cfg)
	if err != nil {
		return err
	}
	if spanExp != nil {
		if err := spanExp.Close(); err != nil {
			return fmt.Errorf("span export: %w", err)
		}
		fmt.Printf("spans: exported %d dropped %d to %s\n",
			spanExp.Exported(), spanExp.Dropped(), *spanOut)
	}
	r := res.Report
	fmt.Printf("user %d: slots=%d tiles=%d bytes=%d releases=%d\n",
		res.User, res.Slots, res.Tiles, res.Bytes, res.Releases)
	fmt.Printf("QoE=%.4f quality=%.4f delay=%.4fms variance=%.4f coverage=%.4f fps=%.1f\n",
		r.QoE, r.Quality, r.Delay, r.Variance, r.Coverage, r.FPSFrac*1000 / *slotMs)
	return nil
}
