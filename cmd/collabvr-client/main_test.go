package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/motion"
	"repro/internal/server"
)

func TestClientJoinsRealServer(t *testing.T) {
	cfg := server.DefaultConfig(core.DVGreedy{})
	cfg.SlotDuration = 3 * time.Millisecond
	cfg.TotalSlots = 40
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-server", srv.ControlAddr(),
			"-user", "1", "-slotms", "3", "-seconds", "1",
		})
	}()
	<-srv.Done()
	srv.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client did not finish")
	}
}

func TestClientLoadsTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	tr := motion.Generate(motion.Scenes()[0], 1, 50, 60, 1)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg := server.DefaultConfig(core.DVGreedy{})
	cfg.SlotDuration = 3 * time.Millisecond
	cfg.TotalSlots = 20
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-server", srv.ControlAddr(),
			"-user", "2", "-slotms", "3", "-trace", path,
		})
	}()
	<-srv.Done()
	srv.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestClientMissingTraceFile(t *testing.T) {
	if err := run([]string{"-trace", "/nonexistent/file.csv"}); err == nil {
		t.Fatal("missing trace file should error")
	}
}

func TestClientBadFlags(t *testing.T) {
	if err := run([]string{"-user", "x"}); err == nil {
		t.Fatal("bad flag should error")
	}
}
