// Command collabvr-health turns health-plane time-series exports (the JSONL
// written by collabvr-loadgen -health-out, or fetched from a live server's
// /debug/health endpoint) into a fleet health report: per-series trends on
// the raw tier, MAD-based anomaly flags, and — with -baseline — a CI gate
// that exits nonzero when any series regressed past the tolerance in its
// bad direction.
//
// Usage:
//
//	collabvr-health health.jsonl
//	collabvr-health -json -name fleet_ health.jsonl
//	collabvr-health -write-baseline results/health_baseline.json health.jsonl
//	collabvr-health -baseline results/health_baseline.json -tolerance 0.10 health.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/obs/tsdb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "collabvr-health:", err)
		os.Exit(1)
	}
}

// healthReport is the CLI's document: trends over the raw tier, the flagged
// anomalies, and (when a baseline is given) the regressions.
type healthReport struct {
	Series      int               `json:"series"`
	Skipped     int               `json:"skipped,omitempty"`
	Trends      []tsdb.Trend      `json:"trends"`
	Anomalies   []tsdb.Anomaly    `json:"anomalies,omitempty"`
	Regressions []tsdb.Regression `json:"regressions,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("collabvr-health", flag.ContinueOnError)
	var (
		asJSON    = fs.Bool("json", false, "emit the report as JSON instead of text")
		name      = fs.String("name", "", "only series whose name contains this substring")
		threshold = fs.Float64("threshold", tsdb.DefaultAnomalyThreshold, "MAD robust z-score above which a point is an anomaly")
		topN      = fs.Int("top", 10, "anomalies to print in the text report (JSON always carries all)")

		baseline  = fs.String("baseline", "", "compare against this snapshot JSONL and exit nonzero on regression")
		writeBase = fs.String("write-baseline", "", "write the (filtered) current snapshots to this path and exit")
		tolerance = fs.Float64("tolerance", 0.10, "relative degradation allowed before a series counts as regressed")
		absFloor  = fs.Float64("abs-floor", 0.05, "absolute drift ignored regardless of ratio (near-zero baseline noise)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	paths := fs.Args()
	if len(paths) == 0 {
		paths = []string{"-"}
	}
	var snaps []tsdb.SeriesSnapshot
	skipped := 0
	for _, path := range paths {
		s, sk, err := readFile(path)
		if err != nil {
			return err
		}
		snaps = append(snaps, s...)
		skipped += sk
	}
	if *name != "" {
		kept := snaps[:0]
		for _, s := range snaps {
			if strings.Contains(s.Name, *name) {
				kept = append(kept, s)
			}
		}
		snaps = kept
	}
	if len(snaps) == 0 {
		return fmt.Errorf("no health series in input")
	}

	if *writeBase != "" {
		f, err := os.Create(*writeBase)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		for i := range snaps {
			if err := enc.Encode(&snaps[i]); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d series to %s\n", len(snaps), *writeBase)
		return nil
	}

	rep := healthReport{Series: len(snaps), Skipped: skipped}
	for _, s := range snaps {
		if s.Tier != 1 {
			continue // downsampled tiers restate the raw data
		}
		rep.Trends = append(rep.Trends, tsdb.TrendOf(s, *threshold))
	}
	rep.Anomalies = tsdb.Detect(snaps, *threshold)
	sort.SliceStable(rep.Anomalies, func(i, j int) bool {
		return rep.Anomalies[i].Score > rep.Anomalies[j].Score
	})

	if *baseline != "" {
		base, _, err := readFile(*baseline)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		rep.Regressions = tsdb.Compare(base, snaps, *tolerance, *absFloor)
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		formatReport(out, rep, *topN)
	}
	if n := len(rep.Regressions); n > 0 {
		return fmt.Errorf("%d series regressed vs baseline", n)
	}
	return nil
}

func formatReport(out io.Writer, rep healthReport, topN int) {
	fmt.Fprintf(out, "# health: %d series, %d anomalies", rep.Series, len(rep.Anomalies))
	if rep.Skipped > 0 {
		fmt.Fprintf(out, ", %d partial trailing line(s) skipped", rep.Skipped)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "%-34s %5s %7s %6s %10s %10s %10s %5s %5s\n",
		"series", "shard", "kind", "points", "first", "last", "mean", "dir", "anom")
	for _, tr := range rep.Trends {
		fmt.Fprintf(out, "%-34s %5d %7s %6d %10.4g %10.4g %10.4g %5s %5d\n",
			tr.Name, tr.Shard, tr.Kind, tr.Points, tr.First, tr.Last, tr.Mean, tr.Direction, tr.Anomalies)
	}
	if len(rep.Anomalies) > 0 {
		fmt.Fprintf(out, "# top anomalies (threshold exceeded, highest score first)\n")
		for i, a := range rep.Anomalies {
			if i >= topN {
				fmt.Fprintf(out, "... and %d more\n", len(rep.Anomalies)-topN)
				break
			}
			fmt.Fprintf(out, "%s shard=%d slot=%d value=%.4g median=%.4g score=%.1f\n",
				a.Series, a.Shard, a.Slot, a.Value, a.Median, a.Score)
		}
	}
	if len(rep.Regressions) > 0 {
		fmt.Fprintf(out, "# regressions vs baseline\n")
		for _, r := range rep.Regressions {
			fmt.Fprintln(out, r.String())
		}
	}
}

func readFile(path string) ([]tsdb.SeriesSnapshot, int, error) {
	r := io.Reader(os.Stdin)
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		r = f
	}
	snaps, skipped, err := tsdb.ReadSnapshots(r)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	return snaps, skipped, nil
}
