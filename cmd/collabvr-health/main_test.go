package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/tsdb"
)

// writeExport renders a store with one spiky gauge and one miss counter to a
// JSONL file; missPerSlot scales the counter's growth so tests can fabricate
// regressions against a healthier baseline.
func writeExport(t *testing.T, dir, name string, missPerSlot float64) string {
	t.Helper()
	st := tsdb.New(tsdb.Options{})
	g := st.Series("fleet_slot_quality", tsdb.Gauge)
	c := st.Series("collabvr_slo_miss_total", tsdb.Counter)
	total := 0.0
	for slot := int64(0); slot < 64; slot++ {
		v := 4.0
		if slot == 40 {
			v = 0.1 // the anomaly
		}
		g.Observe(slot, v)
		total += missPerSlot
		c.Observe(slot, total)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportTextAndJSON(t *testing.T) {
	dir := t.TempDir()
	path := writeExport(t, dir, "health.jsonl", 1)

	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"fleet_slot_quality", "collabvr_slo_miss_total", "top anomalies", "slot=40"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}

	out.Reset()
	if err := run([]string{"-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	var rep healthReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Series != 6 { // 2 series x 3 tiers
		t.Errorf("Series = %d, want 6", rep.Series)
	}
	if len(rep.Trends) != 2 {
		t.Errorf("%d trends, want 2 (raw tier only)", len(rep.Trends))
	}
	if len(rep.Anomalies) == 0 || rep.Anomalies[0].Slot != 40 {
		t.Errorf("anomalies = %+v, want the slot-40 dip first", rep.Anomalies)
	}

	// The name filter narrows the report.
	out.Reset()
	if err := run([]string{"-json", "-name", "quality", path}, &out); err != nil {
		t.Fatal(err)
	}
	rep = healthReport{}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Series != 3 || len(rep.Trends) != 1 {
		t.Errorf("filtered report has %d series / %d trends, want 3 / 1", rep.Series, len(rep.Trends))
	}
}

func TestBaselineGate(t *testing.T) {
	dir := t.TempDir()
	good := writeExport(t, dir, "good.jsonl", 1)
	bad := writeExport(t, dir, "bad.jsonl", 5) // 5x the miss growth

	// Write a baseline from the healthy run.
	basePath := filepath.Join(dir, "baseline.json")
	var out bytes.Buffer
	if err := run([]string{"-write-baseline", basePath, good}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 6 series") {
		t.Fatalf("write-baseline output: %s", out.String())
	}

	// Healthy vs healthy passes.
	out.Reset()
	if err := run([]string{"-baseline", basePath, good}, &out); err != nil {
		t.Fatalf("self-comparison regressed: %v\n%s", err, out.String())
	}

	// A 5x miss-rate run fails the gate and names the series.
	out.Reset()
	err := run([]string{"-baseline", basePath, bad}, &out)
	if err == nil {
		t.Fatal("5x miss growth passed the baseline gate")
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("gate error = %v, want a regression message", err)
	}
	if !strings.Contains(out.String(), "collabvr_slo_miss_total") {
		t.Errorf("report does not name the regressed series:\n%s", out.String())
	}
}

func TestBadAndEmptyInput(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}, &bytes.Buffer{}); err == nil {
		t.Error("empty input accepted")
	}

	corrupt := filepath.Join(dir, "corrupt.jsonl")
	good := writeExport(t, dir, "ok.jsonl", 1)
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(corrupt, append([]byte("{nope}\n"), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{corrupt}, &bytes.Buffer{}); err == nil {
		t.Error("interior corruption accepted")
	}

	if err := run([]string{filepath.Join(dir, "missing.jsonl")}, &bytes.Buffer{}); err == nil {
		t.Error("missing file accepted")
	}
}
