package main

import "testing"

func TestBadSetup(t *testing.T) {
	if err := run([]string{"-setup", "3"}); err == nil {
		t.Fatal("unknown setup should error")
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-slots", "x"}); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestTinyRun(t *testing.T) {
	if testing.Short() {
		t.Skip("live testbed run in -short mode")
	}
	// A minimal real run: setup 1, few slots, fast slot clock.
	if err := run([]string{"-setup", "1", "-slots", "60", "-slotms", "3"}); err != nil {
		t.Fatal(err)
	}
}
