// Command collabvr-testbed runs the real-system experiments of Section VI
// on an in-process loopback testbed: a live edge server, N emulated
// smartphone clients over real UDP/TCP sockets, per-user token-bucket
// throttles and shared router buckets standing in for the paper's Linux TC
// and 802.11ac hardware. It prints the Fig. 7 (setup 1: 8 users, 1 router)
// or Fig. 8 (setup 2: 15 users, 2 routers) comparison of the proposed
// algorithm against Firefly and modified PAVQ, including the headline QoE
// improvement percentages.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/testbed"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "collabvr-testbed:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("collabvr-testbed", flag.ContinueOnError)
	var (
		setupID = fs.Int("setup", 1, "experiment setup: 1 (8 users, 1 router) or 2 (15 users, 2 routers)")
		slots   = fs.Int("slots", 1200, "experiment length in slots")
		slotMs  = fs.Float64("slotms", 1000.0/60, "slot duration in milliseconds")
		seed    = fs.Int64("seed", 1, "random seed")
		repeats = fs.Int("repeats", 1, "repetitions to average (paper: 5)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var setup testbed.Setup
	switch *setupID {
	case 1:
		setup = testbed.Setup1()
	case 2:
		setup = testbed.Setup2()
	default:
		return fmt.Errorf("unknown setup %d", *setupID)
	}

	fmt.Printf("# Fig %d-style real-system run: %s, %d slots of %.2f ms, %d repeat(s)\n\n",
		*setupID+6, setup.Name, *slots, *slotMs, *repeats)

	names := []string{"proposed", "firefly", "pavq"}
	sums := make([]metrics.Report, len(names))
	var fpsSums []float64 = make([]float64, len(names))
	for rep := 0; rep < *repeats; rep++ {
		cfg := testbed.Config{
			Setup:        setup,
			Slots:        *slots,
			SlotDuration: time.Duration(*slotMs * float64(time.Millisecond)),
			Seed:         *seed + int64(rep)*1009,
			Params:       core.DefaultSystemParams(),
		}
		results, err := testbed.RunAll(cfg)
		if err != nil {
			return err
		}
		for i, r := range results {
			sums[i].QoE += r.Aggregate.QoE
			sums[i].Quality += r.Aggregate.Quality
			sums[i].Delay += r.Aggregate.Delay
			sums[i].Variance += r.Aggregate.Variance
			sums[i].Coverage += r.Aggregate.Coverage
			sums[i].FPSFrac += r.Aggregate.FPSFrac
			fpsSums[i] += r.FPS
		}
	}
	reports := make([]metrics.Report, len(names))
	for i := range sums {
		n := float64(*repeats)
		reports[i] = metrics.Report{
			QoE:      sums[i].QoE / n,
			Quality:  sums[i].Quality / n,
			Delay:    sums[i].Delay / n,
			Variance: sums[i].Variance / n,
			Coverage: sums[i].Coverage / n,
			FPSFrac:  sums[i].FPSFrac / n,
		}
	}

	slotRate := 1000 / *slotMs
	fmt.Print(metrics.FormatComparison(
		fmt.Sprintf("Fig %d: average per-user metrics (delay in ms)", *setupID+6),
		names, reports, slotRate))
	fmt.Println()

	improvement := func(ours, other float64) string {
		if other == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", (ours-other)/absF(other)*100)
	}
	fmt.Printf("QoE improvement of proposed: vs firefly %s, vs pavq %s\n",
		improvement(reports[0].QoE, reports[1].QoE),
		improvement(reports[0].QoE, reports[2].QoE))
	return nil
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
