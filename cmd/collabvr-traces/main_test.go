package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/motion"
	"repro/internal/nettrace"
)

func TestGeneratesLoadableTraces(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-out", dir, "-users", "3", "-seconds", "2", "-nettraces", "4",
	})
	if err != nil {
		t.Fatal(err)
	}

	motions, err := filepath.Glob(filepath.Join(dir, "motion-user*.csv"))
	if err != nil || len(motions) != 3 {
		t.Fatalf("motion traces = %d (%v), want 3", len(motions), err)
	}
	f, err := os.Open(motions[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := motion.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 120 {
		t.Errorf("trace slots = %d, want 120", len(tr))
	}

	nets, err := filepath.Glob(filepath.Join(dir, "net-*.csv"))
	if err != nil || len(nets) != 4 {
		t.Fatalf("net traces = %d (%v), want 4", len(nets), err)
	}
	nf, err := os.Open(nets[0])
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Close()
	if _, err := nettrace.ReadCSV(nf); err != nil {
		t.Fatalf("net trace unreadable: %v", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-users", "x"}); err == nil {
		t.Fatal("bad flag should error")
	}
}
