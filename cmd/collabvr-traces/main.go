// Command collabvr-traces generates the trace datasets the reproduction
// substitutes for the paper's external data: 6-DoF motion traces (standing
// in for the Firefly 25-user dataset) and network-throughput traces
// (standing in for the FCC broadband and Ghent 4G/LTE datasets). Traces are
// written as CSV files that the simulator and examples can reload.
//
// Usage:
//
//	collabvr-traces -out ./traces -users 25 -seconds 300 -nettraces 50
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/motion"
	"repro/internal/nettrace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "collabvr-traces:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("collabvr-traces", flag.ContinueOnError)
	var (
		out      = fs.String("out", "traces", "output directory")
		users    = fs.Int("users", 25, "number of motion-trace users")
		seconds  = fs.Float64("seconds", 300, "trace length in seconds")
		fps      = fs.Float64("fps", 60, "slots per second")
		netCount = fs.Int("nettraces", 50, "number of network traces (half broadband, half LTE)")
		seed     = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	slots := int(*seconds * *fps)
	ds := motion.GenerateDataset(*users, slots, *fps, *seed)
	for u, trace := range ds.Traces {
		path := filepath.Join(*out, fmt.Sprintf("motion-user%02d.csv", u))
		if err := writeMotion(path, trace); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d motion traces (%d slots each) to %s\n", *users, slots, *out)

	rng := rand.New(rand.NewSource(*seed))
	cfg := nettrace.DefaultConfig()
	cfg.Seconds = *seconds
	traces := nettrace.GenerateMix(*netCount, cfg, rng)
	for i, tr := range traces {
		kind := "broadband"
		if i%2 == 1 {
			kind = "lte"
		}
		path := filepath.Join(*out, fmt.Sprintf("net-%s-%03d.csv", kind, i))
		if err := writeNet(path, tr); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d network traces to %s\n", *netCount, *out)
	return nil
}

func writeMotion(path string, trace motion.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteCSV(f)
}

func writeNet(path string, tr *nettrace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.WriteCSV(f)
}
