// Command collabvr-loadgen generates session-churn workloads and runs them
// against the edge server — either in deterministic virtual time (-mode sim)
// or over real loopback sockets with one emulated client per session
// (-mode live). It can record a workload to JSONL, replay a recorded one
// bit-identically, verify the record/replay round trip, and binary-search the
// server's session capacity against a deadline-miss target.
//
// Usage:
//
//	collabvr-loadgen -arrivals poisson -rate 20 -mean-hold 3 -slots 1200
//	collabvr-loadgen -arrivals steady -sessions 500 -mode live -slotms 50
//	collabvr-loadgen -record w.jsonl -check-replay
//	collabvr-loadgen -replay w.jsonl
//	collabvr-loadgen -find-capacity -miss-target 0.01 -budget 120
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/baseline"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "collabvr-loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("collabvr-loadgen", flag.ContinueOnError)
	var (
		arrivals = fs.String("arrivals", "steady", "arrival shape: steady, poisson, mmpp, flash, diurnal")
		sessions = fs.Int("sessions", 100, "session count (steady: exact; stochastic shapes: cap, 0 = uncapped)")
		rate     = fs.Float64("rate", 10, "mean arrival rate per second (stochastic shapes)")
		meanHold = fs.Float64("mean-hold", 0, "mean session duration in seconds (0 = whole horizon)")
		slots    = fs.Int("slots", 600, "workload horizon in slots")
		sps      = fs.Float64("sps", 60, "slots per second on the workload timeline")
		slotMs   = fs.Float64("slotms", 0, "live-mode wall-clock slot duration in ms (0 = 1000/sps)")
		seed     = fs.Int64("seed", 1, "workload seed (same seed, same workload, byte for byte)")

		algo   = fs.String("algo", "dvgreedy", "allocator: dvgreedy, dvgreedy-scan, density, value, optimal, firefly, pavq")
		budget = fs.Float64("budget", 400, "server throughput budget B(t) in Mbps (fleet-wide when -shards > 1)")

		shards       = fs.Int("shards", 1, "run against a sharded fleet of this many servers (1 = single server)")
		scorer       = fs.String("scorer", "least-loaded", "fleet placement scorer: least-loaded, locality, slo-burn")
		coordinators = fs.Int("coordinators", 1, "replicated coordinator size for the fleet owner map (1 = single, no replication cost)")
		alpha        = fs.Float64("alpha", 0.1, "QoE delay weight")
		beta         = fs.Float64("beta", 0.5, "QoE variance weight")

		mode        = fs.String("mode", "sim", "execution engine: sim (virtual time) or live (loopback sockets)")
		maxSessions = fs.Int("max-sessions", 0, "live-mode server accept limit, excess rejected (0 = unlimited)")
		record      = fs.String("record", "", "write the workload to this JSONL file")
		recordPoses = fs.Bool("record-poses", false, "include per-slot pose events in the recorded JSONL")
		replay      = fs.String("replay", "", "replay a recorded workload instead of generating one")
		checkReplay = fs.Bool("check-replay", false, "verify the record/replay round trip is bit-identical, then run")

		findCap    = fs.Bool("find-capacity", false, "binary-search max concurrent sessions under -miss-target")
		missTarget = fs.Float64("miss-target", 0.01, "capacity-search deadline-miss rate target")
		capLo      = fs.Int("cap-lo", 1, "capacity-search floor (sessions)")
		capHi      = fs.Int("cap-hi", 1024, "capacity-search ceiling (sessions)")

		chaosPath  = fs.String("chaos", "", "chaos profile JSON injecting faults into the run (enables SLO + breaker)")
		chaosCheck = fs.Bool("chaos-check", false, "validate the -chaos profile, print its schedule, and exit")
		drainT     = fs.Duration("drain-timeout", 0, "live mode: gracefully drain the server for up to this long before closing (0 = immediate close)")
		reconnect  = fs.Bool("reconnect", false, "live mode: clients redial the control channel when it drops")
		httpAddr   = fs.String("http", "", "observability HTTP listen address serving /metrics (empty = disabled)")
		debug      = fs.Bool("debug", false, "expose pprof, /debug/runtime and runtime gauges on the -http mux")
		spanOut    = fs.String("span-out", "", "write end-to-end request spans to this JSONL file (analyze with collabvr-spans)")
		spanSample = fs.Uint64("span-sample", 1, "keep 1 in N traces (deterministic by trace ID; 0 or 1 = all)")
		sloOn      = fs.Bool("slo", false, "track per-session QoE SLO burn rates (served on /debug/slo with -http)")
		verbose    = fs.Bool("v", false, "verbose logging")

		healthOut   = fs.String("health-out", "", "sim mode: write the health-plane time-series export to this JSONL file (analyze with collabvr-health)")
		healthEvery = fs.Int("health-every", 1, "sim mode: registry/SLO sampling cadence in slots")
		evacOn      = fs.Bool("evac", false, "sim mode, -shards > 1: enable the SLO-pressure evacuation loop (implies -slo)")

		decisionsOut = fs.String("decisions-out", "", "sim mode: write one decision record per allocated slot to this JSONL file (analyze with collabvr-regret)")
		slotsRing    = fs.Int("slots-ring", 1024, "decision flight-recorder ring capacity (served with capacity and drop count on /debug/slots with -http)")
		counterK     = fs.Int("counterfactual-k", 0, "sim mode: record the top-K unchosen upgrades per decision (0 = off)")
		regretRef    = fs.Bool("regret-ref", false, "sim mode: score every recorded decision against the per-slot DP optimum (fills the regret fields; slower)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := allocatorByName(*algo); err != nil {
		return err
	}
	if *mode != "sim" && *mode != "live" {
		return fmt.Errorf("unknown mode %q (want sim or live)", *mode)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1")
	}
	if *shards > 1 {
		if _, err := fleet.ScorerByName(*scorer); err != nil {
			return err
		}
	}
	newAlloc := func() core.Allocator {
		a, _ := allocatorByName(*algo)
		return a
	}
	params := core.DefaultSystemParams()
	params.Alpha = *alpha
	params.Beta = *beta

	var chaosProf *chaos.Profile
	if *chaosPath != "" {
		var err error
		chaosProf, err = chaos.LoadProfile(*chaosPath)
		if err != nil {
			return err
		}
		if chaosProf.HasShardFaults() && *shards == 1 {
			return fmt.Errorf("chaos profile %q has shard faults; run with -shards > 1 (or use collabvr-fleet)", chaosProf.Name)
		}
		if chaosProf.HasCoordFaults() && *shards == 1 {
			return fmt.Errorf("chaos profile %q has coordinator faults; run with -shards > 1 (or use collabvr-fleet)", chaosProf.Name)
		}
		if m := chaosProf.MaxReplica(); m >= *coordinators {
			return fmt.Errorf("chaos profile %q targets coordinator replica %d; run with -coordinators > %d", chaosProf.Name, m, m)
		}
	}
	if *chaosCheck {
		if chaosProf == nil {
			return fmt.Errorf("-chaos-check needs -chaos <profile.json>")
		}
		fmt.Fprint(out, chaosSummary(chaosProf))
		return nil
	}

	base := load.Config{
		Shape:          load.Shape(*arrivals),
		Seed:           *seed,
		HorizonSlots:   *slots,
		SlotsPerSecond: *sps,
		Sessions:       *sessions,
		RatePerSec:     *rate,
		MeanHoldSec:    *meanHold,
	}

	wantHealth := *healthOut != "" || *evacOn
	if wantHealth && *mode != "sim" {
		return fmt.Errorf("-health-out/-evac need -mode sim (the live server samples via its own -health endpoint)")
	}
	if *evacOn && *shards < 2 {
		return fmt.Errorf("-evac needs -shards > 1 (the loop migrates sessions between shards)")
	}

	reg := obs.NewRegistry()
	var slo *obs.SLOMonitor
	// A chaos campaign implies SLO tracking and the circuit breaker: the
	// resilience path is SLO state -> breaker cap, so running faults without
	// them would measure nothing. The evacuation loop's pressure signal is
	// SLO page state, so -evac implies it too.
	if *sloOn || chaosProf != nil || *evacOn {
		slo = obs.NewSLOMonitor(obs.DefaultSLOConfig(), reg)
	}
	var brk *obs.Breaker
	if chaosProf != nil {
		bcfg := obs.DefaultBreakerConfig()
		bcfg.Levels = params.Levels
		brk = obs.NewBreaker(bcfg, reg)
	}
	recordDecisions := *decisionsOut != "" || *counterK > 0 || *regretRef
	if recordDecisions && *mode != "sim" {
		return fmt.Errorf("-decisions-out/-counterfactual-k/-regret-ref need -mode sim (the live server records via its own -http endpoint)")
	}
	var (
		rec       *obs.Recorder
		attr      *obs.RegretAttributor
		decisions *os.File
	)
	if *mode == "sim" && (recordDecisions || *httpAddr != "") {
		attr = obs.NewRegretAttributor(obs.RegretAttributorOptions{Registry: reg})
		ropts := obs.RecorderOptions{RingSize: *slotsRing, Attributor: attr}
		if *decisionsOut != "" {
			var err error
			decisions, err = os.Create(*decisionsOut)
			if err != nil {
				return fmt.Errorf("decision export: %w", err)
			}
			defer decisions.Close()
			ropts.Writer = decisions
		}
		rec = obs.NewRecorder(ropts)
	}
	// Health plane: one store for both the fleet series (fed by the fleet
	// engine) and the registry/SLO samples (fed by the sampler on the
	// virtual slot clock).
	var (
		healthStore   *tsdb.Store
		healthSampler *tsdb.Sampler
	)
	if wantHealth {
		healthStore = tsdb.New(tsdb.Options{})
		healthSampler = tsdb.NewSampler(tsdb.SamplerOptions{
			Store:      healthStore,
			Registry:   reg,
			SLO:        slo,
			EverySlots: *healthEvery,
		})
	}
	var (
		tracer  *trace.Tracer
		spanExp *trace.Exporter
	)
	if *spanOut != "" {
		f, err := os.Create(*spanOut)
		if err != nil {
			return fmt.Errorf("span export: %w", err)
		}
		defer f.Close()
		// The virtual-time engine exports synchronously (deterministic
		// ordering, nothing can drop); the live engine uses the async queue
		// to keep JSON encoding off the pipeline hot path.
		spanExp = trace.NewExporter(trace.ExporterOptions{Writer: f, Sync: *mode == "sim"})
		tracer = trace.New(trace.Options{Sample: *spanSample, Exporter: spanExp})
	}
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("observability listen: %w", err)
		}
		defer ln.Close()
		mopts := obs.MuxOptions{SLO: slo, Regret: attr, Debug: *debug}
		if healthStore != nil {
			mopts.Health = tsdb.Handler(healthStore, nil)
		}
		go http.Serve(ln, obs.NewMuxOpts(reg, rec, mopts))
		fmt.Fprintf(out, "observability on http://%s/metrics\n", ln.Addr())
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}

	slotDur := time.Duration(0)
	if *slotMs > 0 {
		slotDur = time.Duration(*slotMs * float64(time.Millisecond))
	}
	// Fleet dispatch: -shards > 1 routes the run through the sharded
	// engines; the last fleet report is kept for the fleet addendum.
	var fleetRep *load.FleetReport
	execute := func(w *load.Workload, r *obs.Registry) (*load.RunReport, error) {
		if *mode == "live" {
			lcfg := load.LiveConfig{
				Params:       params,
				NewAllocator: newAlloc,
				AllocName:    *algo,
				BudgetMbps:   *budget,
				SlotDuration: slotDur,
				MaxSessions:  *maxSessions,
				Metrics:      r,
				Tracer:       tracer,
				TraceEpoch:   uint64(*seed),
				SLO:          slo,
				Chaos:        chaosProf,
				Breaker:      brk,
				Reconnect:    *reconnect,
				DrainTimeout: *drainT,
				Logf:         logf,
			}
			if chaosProf != nil {
				// Faults on the wire need the adaptive retransmission path;
				// the retry slot tracks the display-slot clock.
				retrySlot := slotDur
				if retrySlot <= 0 && *sps > 0 {
					retrySlot = time.Duration(float64(time.Second) / *sps)
				}
				lcfg.RetryPolicy = transport.DefaultRetryPolicy(retrySlot)
			}
			if *shards > 1 {
				frep, err := load.RunLiveFleet(w, load.FleetLiveConfig{
					Live:         lcfg,
					Shards:       *shards,
					Scorer:       *scorer,
					Coordinators: *coordinators,
				})
				if err != nil {
					return nil, err
				}
				fleetRep = frep
				return &frep.RunReport, nil
			}
			return load.RunLive(w, lcfg)
		}
		scfg := load.SimConfig{
			Params:       params,
			NewAllocator: newAlloc,
			AllocName:    *algo,
			BudgetMbps:   *budget,
			Metrics:      r,
			Tracer:       tracer,
			TraceEpoch:   uint64(*seed),
			SLO:          slo,
			Chaos:        chaosProf,
			Breaker:      brk,
		}
		// Decision recording applies to the measured run only, not to
		// capacity-search probes (which pass a nil registry). Same for
		// health sampling: probes must not pollute the exported series.
		if r != nil {
			scfg.Recorder = rec
			scfg.CounterfactualK = *counterK
			scfg.RegretRef = *regretRef
			scfg.Health = healthSampler
		}
		if *shards > 1 {
			fcfg := load.FleetSimConfig{
				Sim:          scfg,
				Shards:       *shards,
				Scorer:       *scorer,
				Coordinators: *coordinators,
			}
			if r != nil {
				fcfg.Health = healthStore
				if *evacOn {
					fcfg.Evac = fleet.EvacConfig{Enabled: true}
				}
			}
			frep, err := load.SimulateFleet(w, fcfg)
			if err != nil {
				return nil, err
			}
			fleetRep = frep
			return &frep.RunReport, nil
		}
		return load.Simulate(w, scfg)
	}

	if *findCap {
		probeWorkload := func(n int) (*load.Workload, error) {
			pcfg := base
			pcfg.Shape = load.Steady
			pcfg.Sessions = n
			pcfg.MeanHoldSec = 0 // capacity probes hold all n sessions concurrently
			return load.Generate(pcfg)
		}
		if *shards > 1 {
			// Fleet capacity is a two-knee search (fleet total + per-shard);
			// probes run the deterministic fleet engine regardless of -mode.
			probe := func(n, nShards int, globalBudget float64) (float64, error) {
				pw, err := probeWorkload(n)
				if err != nil {
					return 0, err
				}
				fcfg := load.FleetSimConfig{Shards: nShards, Scorer: *scorer}
				fcfg.Sim = load.SimConfig{
					Params:       params,
					NewAllocator: newAlloc,
					AllocName:    *algo,
					BudgetMbps:   globalBudget,
				}
				rep, err := load.SimulateFleet(pw, fcfg)
				if err != nil {
					return 0, err
				}
				miss := rep.AggregateMissRate()
				fmt.Fprintf(out, "probe %5d sessions x %d shard(s) @ %.0f Mbps: deadline-miss %.4f\n",
					n, nShards, globalBudget, miss)
				return miss, nil
			}
			res, err := load.FindFleetCapacity(*capLo, *capHi, *missTarget, *shards, *budget, probe)
			if err != nil {
				return err
			}
			fmt.Fprint(out, res.Format())
			return nil
		}
		probe := func(n int) (float64, error) {
			pw, err := probeWorkload(n)
			if err != nil {
				return 0, err
			}
			rep, err := execute(pw, nil)
			if err != nil {
				return 0, err
			}
			miss := rep.AggregateMissRate()
			fmt.Fprintf(out, "probe %5d sessions: deadline-miss %.4f\n", n, miss)
			return miss, nil
		}
		res, err := load.FindCapacity(*capLo, *capHi, *missTarget, probe)
		if err != nil {
			return err
		}
		fmt.Fprint(out, res.Format())
		return nil
	}

	var w *load.Workload
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		w, err = load.ReadJSONL(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "replaying %s: %d sessions, %d slots\n",
			*replay, len(w.Sessions), w.Cfg.HorizonSlots)
	} else {
		var err error
		w, err = load.Generate(base)
		if err != nil {
			return err
		}
	}

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			return err
		}
		err = w.WriteJSONL(f, *recordPoses)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "recorded %d sessions to %s\n", len(w.Sessions), *record)
	}

	if *checkReplay {
		if err := verifyReplay(w, *recordPoses, params, newAlloc, *budget); err != nil {
			return err
		}
		fmt.Fprintln(out, "replay check: OK (byte-identical JSONL, identical replayed report)")
	}

	rep, err := execute(w, reg)
	if err != nil {
		return err
	}
	if fleetRep != nil {
		fmt.Fprint(out, fleetRep.FormatFleet())
	} else {
		fmt.Fprint(out, rep.Format())
	}
	if spanExp != nil {
		if err := spanExp.Close(); err != nil {
			return fmt.Errorf("span export: %w", err)
		}
		fmt.Fprintf(out, "spans: exported %d dropped %d to %s\n",
			spanExp.Exported(), spanExp.Dropped(), *spanOut)
	}
	if rec != nil && rec.Records() > 0 {
		fmt.Fprintf(out, "decisions: recorded %d slots (ring %d, dropped %d)\n",
			rec.Records(), rec.RingCapacity(), rec.Dropped())
		if *decisionsOut != "" {
			fmt.Fprintf(out, "decisions: exported to %s\n", *decisionsOut)
		}
		if *regretRef {
			regRep := attr.Report()
			fmt.Fprintf(out, "regret: total %.5f, attributed %.1f%% across %d rows (full report: collabvr-regret %s)\n",
				regRep.TotalRegret, 100*regRep.AttributedFraction, regRep.Rows, *decisionsOut)
		}
	}
	if fleetRep != nil && *evacOn {
		fmt.Fprintf(out, "evac: %d session(s) moved in %d batch(es)\n",
			fleetRep.Evacuations, fleetRep.EvacBatches)
	}
	if *healthOut != "" {
		f, err := os.Create(*healthOut)
		if err != nil {
			return fmt.Errorf("health export: %w", err)
		}
		err = healthStore.WriteJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("health export: %w", err)
		}
		fmt.Fprintf(out, "health: exported %d series to %s\n", healthStore.Len(), *healthOut)
	}
	if slo != nil {
		fmt.Fprintf(out, "slo: warn transitions %d, page transitions %d\n",
			reg.Counter("collabvr_slo_warn_transitions_total").Value(),
			reg.Counter("collabvr_slo_page_transitions_total").Value())
	}
	if chaosProf != nil {
		fmt.Fprintf(out, "chaos %q: breaker transitions degraded %d, open %d, close %d\n",
			chaosProf.Name,
			reg.Counter("collabvr_breaker_degraded_transitions_total").Value(),
			reg.Counter("collabvr_breaker_open_transitions_total").Value(),
			reg.Counter("collabvr_breaker_close_transitions_total").Value())
		if start, end := faultWindow(chaosProf); end > 0 && end < len(rep.SlotQuality) {
			fmt.Fprintf(out, "chaos recovery: mean slot quality %.3f in fault window [%d,%d), %.3f after\n",
				rep.MeanSlotQuality(start, end), start, end,
				rep.MeanSlotQuality(end, len(rep.SlotQuality)))
		}
	}
	return nil
}

// chaosSummary renders a profile's fault schedule for -chaos-check.
func chaosSummary(p *chaos.Profile) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "chaos profile %q: seed %d, %d fault(s)\n", p.Name, p.Seed, len(p.Faults))
	for i, f := range p.Faults {
		fmt.Fprintf(&b, "  fault %d: %-15s start slot %d", i, f.Kind, f.StartSlot)
		if f.DurationSlots > 0 {
			fmt.Fprintf(&b, ", %d slots", f.DurationSlots)
		} else {
			fmt.Fprint(&b, ", open-ended")
		}
		if len(f.Sessions) > 0 {
			fmt.Fprintf(&b, ", sessions %v", f.Sessions)
		}
		switch f.Kind {
		case chaos.FaultBurstLoss:
			fmt.Fprintf(&b, ", p_gb %g p_bg %g p_good %g p_bad %g", f.PGoodBad, f.PBadGood, f.PGood, f.PBad)
		case chaos.FaultLoss, chaos.FaultReorder, chaos.FaultDuplicate, chaos.FaultCorrupt:
			fmt.Fprintf(&b, ", p %g", f.P)
		case chaos.FaultBandwidth:
			fmt.Fprintf(&b, ", factor %g", f.Factor)
		case chaos.FaultStall, chaos.FaultSlowACK:
			fmt.Fprintf(&b, ", delay %g ms", f.DelayMs)
		case chaos.FaultShardKill, chaos.FaultShardDrain:
			fmt.Fprintf(&b, ", shard %d", f.Shard)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintln(&b, "profile OK")
	return b.String()
}

// faultWindow returns the earliest start and latest bounded end slot across
// the profile's faults (end 0 when every fault is open-ended).
func faultWindow(p *chaos.Profile) (start, end int) {
	end = p.EndSlot()
	if end == 0 {
		return 0, 0
	}
	start = end
	for i := range p.Faults {
		if p.Faults[i].StartSlot < start {
			start = p.Faults[i].StartSlot
		}
	}
	return start, end
}

// verifyReplay proves the record/replay loop is lossless: serializing the
// workload, reading it back, and serializing again must give identical bytes,
// and simulating the original and the round-tripped workload must give the
// identical report.
func verifyReplay(w *load.Workload, poses bool, params core.Params,
	newAlloc func() core.Allocator, budget float64) error {
	var b1 bytes.Buffer
	if err := w.WriteJSONL(&b1, poses); err != nil {
		return fmt.Errorf("replay check: %w", err)
	}
	w2, err := load.ReadJSONL(bytes.NewReader(b1.Bytes()))
	if err != nil {
		return fmt.Errorf("replay check: %w", err)
	}
	var b2 bytes.Buffer
	if err := w2.WriteJSONL(&b2, poses); err != nil {
		return fmt.Errorf("replay check: %w", err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		return fmt.Errorf("replay check: JSONL round trip is not byte-identical (%d vs %d bytes)",
			b1.Len(), b2.Len())
	}
	simCfg := load.SimConfig{Params: params, NewAllocator: newAlloc, BudgetMbps: budget}
	r1, err := load.Simulate(w, simCfg)
	if err != nil {
		return fmt.Errorf("replay check: %w", err)
	}
	r2, err := load.Simulate(w2, simCfg)
	if err != nil {
		return fmt.Errorf("replay check: %w", err)
	}
	if r1.Format() != r2.Format() {
		return fmt.Errorf("replay check: replayed workload produced a different report")
	}
	return nil
}

func allocatorByName(name string) (core.Allocator, error) {
	switch name {
	case "dvgreedy", "proposed":
		return core.NewSolverAllocator(), nil
	case "dvgreedy-scan":
		// The original rescan engine, kept for differential comparison.
		return core.DVGreedy{}, nil
	case "density":
		return core.DensityOnly{}, nil
	case "value":
		return core.ValueOnly{}, nil
	case "optimal":
		return core.Optimal{}, nil
	case "firefly":
		return baseline.NewFirefly(), nil
	case "pavq":
		return baseline.NewPAVQ(), nil
	default:
		return nil, fmt.Errorf("unknown allocator %q", name)
	}
}
