package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSimReport(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-arrivals", "poisson", "-rate", "15", "-mean-hold", "1",
		"-slots", "240", "-sessions", "0", "-seed", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# loadgen report (sim", "aggregate deadline-miss rate", "qoe"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRecordReplayCheck(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.jsonl")

	var rec bytes.Buffer
	err := run([]string{"-arrivals", "flash", "-rate", "8", "-mean-hold", "1",
		"-slots", "240", "-sessions", "0", "-seed", "3",
		"-record", path, "-record-poses", "-check-replay"}, &rec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.String(), "replay check: OK") {
		t.Fatalf("missing replay-check confirmation:\n%s", rec.String())
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("workload file not written: %v", err)
	}

	// Replaying the recorded file must reproduce the recorded run's report.
	var rep bytes.Buffer
	if err := run([]string{"-replay", path}, &rep); err != nil {
		t.Fatal(err)
	}
	recReport := rec.String()[strings.Index(rec.String(), "# loadgen report"):]
	repReport := rep.String()[strings.Index(rep.String(), "# loadgen report"):]
	if recReport != repReport {
		t.Fatalf("replayed report differs:\nrecorded:\n%s\nreplayed:\n%s", recReport, repReport)
	}
}

func TestRunFindCapacity(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-find-capacity", "-budget", "120", "-slots", "120",
		"-miss-target", "0.05", "-cap-lo", "1", "-cap-hi", "64"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# capacity search") ||
		!strings.Contains(out.String(), "capacity: ") {
		t.Fatalf("capacity search did not report a verdict:\n%s", out.String())
	}
	if strings.Contains(out.String(), "search ceiling reached") ||
		strings.Contains(out.String(), "below the search floor") {
		t.Fatalf("capacity should converge inside [1,64] at 120 Mbps:\n%s", out.String())
	}
}

func TestRunFleetShards(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-shards", "3", "-sessions", "6", "-slots", "240",
		"-budget", "300", "-seed", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fleet-sim", "fleet: scorer least-loaded", "placements 6"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("fleet report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFleetFindCapacity(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-find-capacity", "-shards", "2", "-budget", "240",
		"-slots", "120", "-miss-target", "0.05", "-cap-lo", "1", "-cap-hi", "16",
		"-seed", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# fleet capacity search", "fleet total", "per-shard knee"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("fleet capacity output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunHealthExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "health.jsonl")
	var out bytes.Buffer
	err := run([]string{"-shards", "3", "-sessions", "6", "-slots", "240",
		"-budget", "300", "-seed", "5", "-evac", "-health-out", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"health: exported", "evac: ", "batch(es)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The export carries both fleet series and sampler-fed SLO series.
	for _, want := range []string{"fleet_shard_page_frac", "collabvr_slo_sessions_ok"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("health export missing series %q", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"bad algo":             {"-algo", "nope"},
		"bad mode":             {"-mode", "warp"},
		"bad shards":           {"-shards", "0"},
		"bad scorer":           {"-shards", "2", "-scorer", "nope"},
		"shard faults 1 shard": {"-chaos", filepath.Join("..", "..", "examples", "chaos", "fleet.json")},
		"evac single shard":    {"-evac"},
		"health in live mode":  {"-mode", "live", "-health-out", "h.jsonl"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}
