package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFig1aAnd1b(t *testing.T) {
	if err := run([]string{"-fig", "1a"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "1b"}); err != nil {
		t.Fatal(err)
	}
}

func TestExtGPU(t *testing.T) {
	if err := run([]string{"-fig", "ext-gpu"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFigIsNoop(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-seed", "x"}); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestSpansMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "spans.jsonl")
	if err := run([]string{"-spans", "-span-out", out}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("span JSONL is empty")
	}
}
