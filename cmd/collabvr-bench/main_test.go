package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFig1aAnd1b(t *testing.T) {
	if err := run([]string{"-fig", "1a"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "1b"}); err != nil {
		t.Fatal(err)
	}
}

func TestExtGPU(t *testing.T) {
	if err := run([]string{"-fig", "ext-gpu"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFigIsNoop(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-seed", "x"}); err == nil {
		t.Fatal("bad flag should error")
	}
}

// writeBenchReport fabricates an allocator-schema report so the history
// and compare paths can be tested without running real benchmarks.
func writeBenchReport(t *testing.T, path string, solverNs, referenceNs float64) {
	t.Helper()
	rep := allocBenchReport{
		Comment: "test",
		Rows: []allocBenchRow{
			{Name: "solver", NUsers: 30, NsPerOp: solverNs},
			{Name: "reference", NUsers: 30, NsPerOp: referenceNs},
		},
	}
	raw, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBenchHistoryAppends(t *testing.T) {
	dir := t.TempDir()
	report := filepath.Join(dir, "report.json")
	history := filepath.Join(dir, "history.jsonl")
	writeBenchReport(t, report, 1000, 2000)

	for i := 0; i < 2; i++ {
		if err := appendBenchHistory(history, "allocator", report); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(history)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("history has %d entries, want 2:\n%s", len(lines), data)
	}
	var entry benchHistoryEntry
	if err := json.Unmarshal([]byte(lines[1]), &entry); err != nil {
		t.Fatal(err)
	}
	if entry.Suite != "allocator" || entry.Date == "" {
		t.Errorf("entry = %+v, want allocator suite with a timestamp", entry)
	}
	var rep genericReport
	if err := json.Unmarshal(entry.Report, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Errorf("embedded report has %d rows, want 2", len(rep.Rows))
	}
}

func TestBenchCompareGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	same := filepath.Join(dir, "same.json")
	slow := filepath.Join(dir, "slow.json")
	writeBenchReport(t, base, 1000, 2000)
	writeBenchReport(t, same, 1050, 2000) // +5%: inside the 10% tolerance
	writeBenchReport(t, slow, 1500, 2000) // +50%: regression

	if err := run([]string{"-compare", same, "-compare-baseline", base}); err != nil {
		t.Fatalf("5%% growth failed the gate: %v", err)
	}
	err := run([]string{"-compare", slow, "-compare-baseline", base})
	if err == nil {
		t.Fatal("50% growth passed the gate")
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("gate error = %v, want a regression message", err)
	}
	// A looser tolerance admits the same report.
	if err := run([]string{"-compare", slow, "-compare-baseline", base,
		"-compare-tolerance", "0.6"}); err != nil {
		t.Fatalf("60%% tolerance still failed: %v", err)
	}
	// -compare without a baseline is a usage error.
	if err := run([]string{"-compare", slow}); err == nil {
		t.Error("-compare without -compare-baseline accepted")
	}
}

func TestSpansMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "spans.jsonl")
	if err := run([]string{"-spans", "-span-out", out}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("span JSONL is empty")
	}
}
