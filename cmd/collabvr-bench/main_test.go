package main

import "testing"

func TestFig1aAnd1b(t *testing.T) {
	if err := run([]string{"-fig", "1a"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "1b"}); err != nil {
		t.Fatal(err)
	}
}

func TestExtGPU(t *testing.T) {
	if err := run([]string{"-fig", "ext-gpu"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFigIsNoop(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-seed", "x"}); err == nil {
		t.Fatal("bad flag should error")
	}
}
