package main

// The -allocator mode: a microbenchmark of the per-slot allocator engines
// (heap Solver, original reference scan, and the sharded SolveBatch) on
// lowered slot problems at several user counts, written as one JSON report
// so CI and EXPERIMENTS.md have a machine-readable baseline.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/knapsack"
)

type allocBenchRow struct {
	Name         string  `json:"name"`
	NUsers       int     `json:"n_users"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	SolvesPerSec float64 `json:"solves_per_sec"`
}

type allocBenchReport struct {
	Comment   string          `json:"comment"`
	GoVersion string          `json:"go_version"`
	GOOS      string          `json:"goos"`
	GOARCH    string          `json:"goarch"`
	Date      string          `json:"date"`
	Rows      []allocBenchRow `json:"rows"`
}

// allocBenchProblem builds one lowered slot instance with n users on the
// content rate ladder, via the same core.LowerProblem path the server uses.
func allocBenchProblem(rng *rand.Rand, params core.Params, n int) *knapsack.Problem {
	ladder := []float64{8, 13, 21, 34, 55, 89}
	users := make([]core.UserInput, n)
	for i := range users {
		scale := 0.6 + rng.Float64()
		rates := make([]float64, params.Levels)
		delays := make([]float64, params.Levels)
		for q := range rates {
			rates[q] = ladder[q%len(ladder)] * scale
			delays[q] = rates[q] / 40 * (2 + rng.Float64())
		}
		users[i] = core.UserInput{
			Rate:  rates,
			Delay: delays,
			Delta: 0.5 + rng.Float64()*0.5,
			MeanQ: rng.Float64() * 6,
			Cap:   20 + rng.Float64()*80,
		}
	}
	p := &core.SlotProblem{T: 1 + rng.Intn(500), Budget: 36 * float64(n), Users: users}
	return core.LowerProblem(params, p)
}

func allocBenchRowFrom(name string, n int, solvesPerOp float64, r testing.BenchmarkResult) allocBenchRow {
	ns := float64(r.NsPerOp())
	row := allocBenchRow{
		Name:        name,
		NUsers:      n,
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if ns > 0 {
		row.SolvesPerSec = solvesPerOp * 1e9 / ns
	}
	return row
}

// runAllocatorBench executes the allocator microbenchmarks and writes the
// JSON report to outPath.
func runAllocatorBench(seed int64, outPath string) error {
	params := core.DefaultSimParams()
	sizes := []int{5, 30, 200, 1000}
	report := allocBenchReport{
		Comment: "per-slot allocator microbenchmark; solver = heap-based incremental greedy, " +
			"reference = original rescan greedy, batch = SolveBatch over 256 independent N=30 slots",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Date:      time.Now().UTC().Format(time.RFC3339),
	}

	for _, n := range sizes {
		p := allocBenchProblem(rand.New(rand.NewSource(seed+int64(n))), params, n)

		var s knapsack.Solver
		s.Combined(p) // warm the scratch: steady state is what the server sees
		solver := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Combined(p)
			}
		})
		report.Rows = append(report.Rows, allocBenchRowFrom("solver", n, 1, solver))

		reference := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.ReferenceCombined()
			}
		})
		report.Rows = append(report.Rows, allocBenchRowFrom("reference", n, 1, reference))
	}

	const batchSlots, batchN = 256, 30
	rng := rand.New(rand.NewSource(seed ^ 0xBA7C4))
	problems := make([]*knapsack.Problem, batchSlots)
	for i := range problems {
		problems[i] = allocBenchProblem(rng, params, batchN)
	}
	batch := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			knapsack.SolveBatch(problems, 0)
		}
	})
	report.Rows = append(report.Rows, allocBenchRowFrom("batch", batchN, batchSlots, batch))

	raw, err := json.MarshalIndent(&report, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("# Allocator microbenchmark (%s %s/%s)\n", report.GoVersion, report.GOOS, report.GOARCH)
	fmt.Printf("%-10s %8s %14s %12s %12s %14s\n",
		"engine", "users", "ns/op", "allocs/op", "bytes/op", "solves/sec")
	for _, row := range report.Rows {
		fmt.Printf("%-10s %8d %14.0f %12d %12d %14.0f\n",
			row.Name, row.NUsers, row.NsPerOp, row.AllocsPerOp, row.BytesPerOp, row.SolvesPerSec)
	}
	fmt.Printf("# report written to %s\n", outPath)
	return nil
}
