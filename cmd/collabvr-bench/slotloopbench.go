package main

// The -slotloop mode: benchmarks of the slot-loop fast paths — warm-start
// solver resolves against cold solves at fixed T, the sharded virtual-time
// campaign against the serial engine, and the batched UDP sender against
// per-tile sends — written as one JSON report (BENCH_slotloop.json). The
// -slotloop-smoke mode is the fast differential: a 10k-session campaign
// must be bit-identical across serial, sharded, and warm-start runs.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/knapsack"
	"repro/internal/load"
	"repro/internal/tiles"
	"repro/internal/transport"
)

type slotloopRow struct {
	Name string `json:"name"`
	// N is the problem scale: users for the solver rows, sessions for the
	// sim row, tiles per flush for the sender row.
	N     int `json:"n"`
	Slots int `json:"slots,omitempty"`
	// DirtyPerSlot is how many users' ladders are perturbed between
	// consecutive solver resolves.
	DirtyPerSlot int     `json:"dirty_per_slot,omitempty"`
	BaselineNs   float64 `json:"baseline_ns_per_op"`
	OptimizedNs  float64 `json:"optimized_ns_per_op"`
	Speedup      float64 `json:"speedup"`
	Note         string  `json:"note,omitempty"`
}

type slotloopReport struct {
	Comment   string        `json:"comment"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Date      string        `json:"date"`
	Rows      []slotloopRow `json:"rows"`
}

// perturb scales k deterministic items' value ladders, the sparse-churn
// regime the warm solver's pick-log replay is built for: same shape, same
// budget, a handful of re-estimated sessions.
func perturb(p *knapsack.Problem, rng *rand.Rand, k int) {
	for j := 0; j < k; j++ {
		it := &p.Items[rng.Intn(len(p.Items))]
		f := 0.95 + rng.Float64()*0.1
		for q := range it.Values {
			it.Values[q] *= f
		}
	}
}

// benchWarmVsCold measures cold full solves vs warm-started resolves over
// the same perturbation sequence at fixed T (the regime the server's slot
// loop hits when sessions re-estimate between slots), and cross-checks
// that both engines pick identical levels before timing anything.
func benchWarmVsCold(seed int64, n, slots int) (slotloopRow, error) {
	params := core.DefaultSimParams()
	dirty := n / 100
	if dirty < 1 {
		dirty = 1
	}

	// Differential first: the speedup is worthless if the answers differ.
	coldP := allocBenchProblem(rand.New(rand.NewSource(seed)), params, n)
	warmP := allocBenchProblem(rand.New(rand.NewSource(seed)), params, n)
	var cold knapsack.Solver
	warm := knapsack.NewWarmSolver()
	coldRng := rand.New(rand.NewSource(seed ^ 0x5107))
	warmRng := rand.New(rand.NewSource(seed ^ 0x5107))
	for s := 0; s < slots; s++ {
		perturb(coldP, coldRng, dirty)
		perturb(warmP, warmRng, dirty)
		cs := cold.Combined(coldP)
		ws := warm.Combined(warmP)
		if cs.Value != ws.Value || !reflect.DeepEqual(cs.Levels, ws.Levels) {
			return slotloopRow{}, fmt.Errorf("warm/cold diverged at n=%d slot %d: value %v vs %v", n, s, cs.Value, ws.Value)
		}
	}
	st := warm.Stats()
	if st.Warm == 0 {
		return slotloopRow{}, fmt.Errorf("warm solver never took the replay path at n=%d (stats %+v)", n, st)
	}

	coldBench := testing.Benchmark(func(b *testing.B) {
		p := allocBenchProblem(rand.New(rand.NewSource(seed)), params, n)
		rng := rand.New(rand.NewSource(seed ^ 0x5107))
		var s knapsack.Solver
		s.Combined(p) // steady-state scratch, as the server sees it
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			perturb(p, rng, dirty)
			s.Combined(p)
		}
	})
	warmBench := testing.Benchmark(func(b *testing.B) {
		p := allocBenchProblem(rand.New(rand.NewSource(seed)), params, n)
		rng := rand.New(rand.NewSource(seed ^ 0x5107))
		s := knapsack.NewWarmSolver()
		s.Combined(p)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			perturb(p, rng, dirty)
			s.Combined(p)
		}
	})

	row := slotloopRow{
		Name:         "solver_warm_vs_cold",
		N:            n,
		Slots:        slots,
		DirtyPerSlot: dirty,
		BaselineNs:   float64(coldBench.NsPerOp()),
		OptimizedNs:  float64(warmBench.NsPerOp()),
		Note:         fmt.Sprintf("fixed T, %d/%d items re-estimated per slot; bit-identical levels verified over %d slots", dirty, n, slots),
	}
	if row.OptimizedNs > 0 {
		row.Speedup = row.BaselineNs / row.OptimizedNs
	}
	return row, nil
}

// slotloopWorkload is the shared 10k-session churn campaign used by both
// the sim benchmark row and the smoke differential.
func slotloopWorkload(seed int64, sessions, horizon int) (*load.Workload, error) {
	return load.Generate(load.Config{
		Shape:          load.Poisson,
		Seed:           seed,
		HorizonSlots:   horizon,
		SlotsPerSecond: 60,
		Sessions:       sessions,
		RatePerSec:     1.25 * float64(sessions) * 60 / float64(horizon),
		MeanHoldSec:    0.8,
	})
}

// benchSimSharded times the 10k-session virtual-time campaign serial vs
// sharded across GOMAXPROCS workers. On a single-core host this is honest
// about being ~1x — the sharded path's value there is that it costs
// nothing, while the warm-start row carries the per-slot win.
func benchSimSharded(seed int64, sessions, horizon int) (slotloopRow, error) {
	w, err := slotloopWorkload(seed, sessions, horizon)
	if err != nil {
		return slotloopRow{}, err
	}
	run := func(workers int) (float64, *load.RunReport, error) {
		start := time.Now()
		rep, err := load.Simulate(w, load.SimConfig{Workers: workers})
		return float64(time.Since(start).Nanoseconds()), rep, err
	}
	serialNs, serialRep, err := run(1)
	if err != nil {
		return slotloopRow{}, err
	}
	shardedNs, shardedRep, err := run(runtime.GOMAXPROCS(0))
	if err != nil {
		return slotloopRow{}, err
	}
	if !reflect.DeepEqual(serialRep, shardedRep) {
		return slotloopRow{}, fmt.Errorf("sharded campaign diverged from serial at %d sessions", sessions)
	}
	row := slotloopRow{
		Name:        "sim_sharded_vs_serial",
		N:           len(w.Sessions),
		Slots:       horizon,
		BaselineNs:  serialNs,
		OptimizedNs: shardedNs,
		Note: fmt.Sprintf("whole-campaign wall time, build phase sharded across %d workers; bit-identical reports verified",
			runtime.GOMAXPROCS(0)),
	}
	if row.OptimizedNs > 0 {
		row.Speedup = row.BaselineNs / row.OptimizedNs
	}
	return row, nil
}

// discardConn is a net.PacketConn that swallows writes, so the sender
// benchmark measures encode+syscall-shaped work without a peer.
type discardConn struct{}

func (discardConn) ReadFrom(p []byte) (int, net.Addr, error)  { return 0, nil, net.ErrClosed }
func (discardConn) WriteTo(p []byte, _ net.Addr) (int, error) { return len(p), nil }
func (discardConn) Close() error                              { return nil }
func (discardConn) LocalAddr() net.Addr                       { return &net.UDPAddr{} }
func (discardConn) SetDeadline(time.Time) error               { return nil }
func (discardConn) SetReadDeadline(time.Time) error           { return nil }
func (discardConn) SetWriteDeadline(time.Time) error          { return nil }

// benchSenderBatch measures ns/tile for per-tile sends (batch size 1)
// against coalesced flushes of `batch` tiles per slot boundary.
func benchSenderBatch(batch, payloadBytes int) slotloopRow {
	payload := make([]byte, payloadBytes)
	dst := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}
	run := func(size int) float64 {
		s := transport.NewSender(discardConn{}, dst, nil, transport.DefaultMTU)
		s.SetBatchSize(size)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for t := 0; t < batch; t++ {
					if err := s.QueueTile(1, uint32(i), tiles.VideoID(t), payload); err != nil {
						b.Fatal(err)
					}
				}
				if err := s.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.NsPerOp()) / float64(batch)
	}
	row := slotloopRow{
		Name:        "sender_batch_vs_single",
		N:           batch,
		BaselineNs:  run(1),
		OptimizedNs: run(batch),
		Note:        fmt.Sprintf("ns per %dB tile on a discard conn, %d tiles per slot flush", payloadBytes, batch),
	}
	if row.OptimizedNs > 0 {
		row.Speedup = row.BaselineNs / row.OptimizedNs
	}
	return row
}

// runSlotloopBench executes the three slot-loop benchmarks and writes the
// JSON report to outPath.
func runSlotloopBench(seed int64, outPath string) error {
	report := slotloopReport{
		Comment: "slot-loop fast paths: warm-start solver resolve vs cold solve at fixed T, " +
			"sharded vs serial virtual-time campaign, batched vs per-tile UDP send",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Date:      time.Now().UTC().Format(time.RFC3339),
	}

	for _, n := range []int{1000, 10000} {
		row, err := benchWarmVsCold(seed, n, 50)
		if err != nil {
			return err
		}
		report.Rows = append(report.Rows, row)
	}
	simRow, err := benchSimSharded(seed, 10_000, 1200)
	if err != nil {
		return err
	}
	report.Rows = append(report.Rows, simRow)
	report.Rows = append(report.Rows, benchSenderBatch(32, 1200))

	raw, err := json.MarshalIndent(&report, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("# Slot-loop benchmark (%s %s/%s, %d cpu)\n",
		report.GoVersion, report.GOOS, report.GOARCH, report.NumCPU)
	fmt.Printf("%-24s %8s %14s %14s %9s\n", "path", "n", "baseline", "optimized", "speedup")
	for _, row := range report.Rows {
		fmt.Printf("%-24s %8d %12.0fns %12.0fns %8.2fx\n",
			row.Name, row.N, row.BaselineNs, row.OptimizedNs, row.Speedup)
	}
	fmt.Printf("# report written to %s\n", outPath)
	return nil
}

// runSlotloopSmoke is the CI differential: a 10k-session churn campaign
// must produce bit-identical reports from the serial cold engine, the
// sharded build, and the warm-start solver.
func runSlotloopSmoke(seed int64) error {
	w, err := slotloopWorkload(seed, 10_000, 1200)
	if err != nil {
		return err
	}
	fmt.Printf("# slotloop smoke: %d sessions, %d slots, peak %d concurrent\n",
		len(w.Sessions), 1200, w.PeakConcurrent())
	base, err := load.Simulate(w, load.SimConfig{Workers: 1})
	if err != nil {
		return err
	}
	for _, v := range []struct {
		name string
		cfg  load.SimConfig
	}{
		{"sharded", load.SimConfig{Workers: 4}},
		{"warm-start", load.SimConfig{Workers: 4, WarmStart: true}},
	} {
		rep, err := load.Simulate(w, v.cfg)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(base, rep) {
			return fmt.Errorf("%s campaign diverged from serial cold baseline", v.name)
		}
		fmt.Printf("# %-10s matches serial cold baseline (%d sessions completed)\n", v.name, rep.Completed)
	}
	fmt.Println("slotloop equivalence: OK")
	return nil
}
