// Command collabvr-bench regenerates every table and figure of the paper's
// evaluation in one run: the content-size convexity of Fig. 1a, the RTT
// measurements of Fig. 1b, the trace-based simulation CDFs of Figs. 2 and 3,
// and the real-system comparisons of Figs. 7 and 8. Pass -fig to select a
// single figure and -full for paper-scale parameters (slower).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/nettrace"
	"repro/internal/obs"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/tiles"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "collabvr-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("collabvr-bench", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", "figure to regenerate: 1a, 1b, 2, 3, 7, 8 or all")
		full     = fs.Bool("full", false, "paper-scale parameters (much slower)")
		seed     = fs.Int64("seed", 1, "random seed")
		traceOut = fs.String("trace-out", "", "write the simulation figures' per-slot decision trace as JSONL to this file (empty = disabled)")
		alloc    = fs.Bool("allocator", false, "run the allocator microbenchmark instead of the figures and write -alloc-out")
		allocOut = fs.String("alloc-out", "BENCH_allocator.json", "JSON report path for -allocator")
		spans    = fs.Bool("spans", false, "run a traced simulation campaign and print the end-to-end span analysis")
		spanOut  = fs.String("span-out", "", "with -spans: also write the span JSONL to this file")

		slotloop      = fs.Bool("slotloop", false, "run the slot-loop benchmark suite (warm-start solver, sharded campaign, batched sender) and write -slotloop-out")
		slotloopOut   = fs.String("slotloop-out", "BENCH_slotloop.json", "JSON report path for -slotloop")
		slotloopSmoke = fs.Bool("slotloop-smoke", false, "run the fast slot-loop equivalence differential (sharded and warm-start campaigns vs serial cold) and exit")

		coordBench = fs.Bool("coord", false, "run the replicated-coordinator cost guard (0 allocs/op Propose, <5% slot-loop overhead at 1 replica) and write -coord-out")
		coordOut   = fs.String("coord-out", "BENCH_coord.json", "JSON report path for -coord")

		history     = fs.String("history", "", "append the -allocator/-slotloop JSON report as a timestamped entry to this JSONL trajectory")
		compare     = fs.String("compare", "", "compare this JSON bench report against -compare-baseline and exit nonzero on regression")
		compareBase = fs.String("compare-baseline", "", "committed baseline JSON report for -compare")
		compareTol  = fs.Float64("compare-tolerance", 0.10, "fractional ns/op growth tolerated by -compare")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare != "" {
		if *compareBase == "" {
			return fmt.Errorf("-compare needs -compare-baseline <report.json>")
		}
		return runBenchCompare(*compare, *compareBase, *compareTol)
	}
	if *alloc {
		if err := runAllocatorBench(*seed, *allocOut); err != nil {
			return err
		}
		if *history != "" {
			return appendBenchHistory(*history, "allocator", *allocOut)
		}
		return nil
	}
	if *slotloop {
		if err := runSlotloopBench(*seed, *slotloopOut); err != nil {
			return err
		}
		if *history != "" {
			return appendBenchHistory(*history, "slotloop", *slotloopOut)
		}
		return nil
	}
	if *slotloopSmoke {
		return runSlotloopSmoke(*seed)
	}
	if *coordBench {
		if err := runCoordBench(*seed, *coordOut); err != nil {
			return err
		}
		if *history != "" {
			return appendBenchHistory(*history, "coord", *coordOut)
		}
		return nil
	}
	if *spans {
		return runSpanAnalysis(*seed, *full, *spanOut)
	}

	var rec *obs.Recorder
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		defer f.Close()
		rec = obs.NewRecorder(obs.RecorderOptions{RingSize: 256, Writer: f})
	}

	want := func(name string) bool { return *fig == "all" || strings.EqualFold(*fig, name) }

	if want("1a") {
		fig1a(*seed)
	}
	if want("1b") {
		fig1b(*seed, *full)
	}
	if want("2") {
		if err := figSim(5, *seed, *full, rec); err != nil {
			return err
		}
	}
	if want("3") {
		if err := figSim(30, *seed, *full, rec); err != nil {
			return err
		}
	}
	if want("7") {
		if err := figTestbed(1, *seed, *full); err != nil {
			return err
		}
	}
	if want("8") {
		if err := figTestbed(2, *seed, *full); err != nil {
			return err
		}
	}
	if want("ext-volatility") || *fig == "all" {
		if err := extVolatility(*seed, *full); err != nil {
			return err
		}
	}
	if want("ext-gpu") || *fig == "all" {
		extGPU()
	}
	if want("ext-estimation") || *fig == "all" {
		if err := extEstimation(*seed, *full); err != nil {
			return err
		}
	}
	if want("ext-weights") || *fig == "all" {
		if err := extWeights(*seed, *full); err != nil {
			return err
		}
	}
	if rec != nil && rec.Records() > 0 {
		fmt.Print(rec.Summary().Format())
		if err := rec.Err(); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		fmt.Printf("# decision trace written to %s\n", *traceOut)
	}
	return nil
}

// runSpanAnalysis runs one traced virtual-time campaign over the standard
// algorithm set and prints the per-stage latency breakdown, critical-path
// attribution and slowest-trace exemplars — the latency-breakdown table of
// docs/OBSERVABILITY.md, produced without sockets or wall-clock slots.
func runSpanAnalysis(seed int64, full bool, spanOut string) error {
	var buf bytes.Buffer
	w := io.Writer(&buf)
	if spanOut != "" {
		f, err := os.Create(spanOut)
		if err != nil {
			return fmt.Errorf("span-out: %w", err)
		}
		defer f.Close()
		w = io.MultiWriter(&buf, f)
	}
	exp := trace.NewExporter(trace.ExporterOptions{Writer: w, Sync: true})
	tracer := trace.New(trace.Options{Exporter: exp})

	cfg := sim.DefaultConfig(5)
	cfg.Seed = seed
	cfg.Seconds = 10
	cfg.Runs = 1
	if full {
		cfg.Seconds = 60
	}
	cfg.IncludeOptimal = false
	cfg.Tracer = tracer
	cfg.TraceEpoch = uint64(seed)
	fmt.Printf("# span analysis: traced simulation, N=%d (%gs, %d algorithms)\n",
		cfg.Users, cfg.Seconds, len(sim.StandardAlgorithms(false)))
	if _, err := sim.Run(cfg, sim.StandardAlgorithms(false)); err != nil {
		return err
	}
	if err := exp.Close(); err != nil {
		return err
	}
	if exp.Dropped() != 0 {
		return fmt.Errorf("span exporter dropped %d spans", exp.Dropped())
	}
	recs, err := trace.ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	a := trace.Analyze(recs, 5)
	fmt.Print(a.Format())
	if spanOut != "" {
		fmt.Printf("# span JSONL written to %s\n", spanOut)
	}
	return nil
}

// extWeights sweeps the QoE weights alpha (delay) and beta (variance),
// quantifying the paper's Section II guidance: "a larger value of alpha is
// chosen for those applications which are more sensitive to the delay, like
// multi-user VR gaming. Similarly, we prefer a larger value of beta when
// our model is applied to those applications requiring consistent content
// streaming like museum touring."
func extWeights(seed int64, full bool) error {
	fmt.Println("# Extension: QoE-weight sensitivity of the proposed algorithm (5 users)")
	fmt.Printf("%-26s %10s %10s %12s %10s\n", "weights", "QoE", "quality", "delay(ms)", "variance")
	settings := []struct {
		name        string
		alpha, beta float64
	}{
		{"alpha=0.02 beta=0.1", 0.02, 0.1},
		{"alpha=0.02 beta=0.5 (sim)", 0.02, 0.5},
		{"alpha=0.02 beta=2 (museum)", 0.02, 2},
		{"alpha=0.1  beta=0.5 (sys)", 0.1, 0.5},
		{"alpha=0.5  beta=0.5 (game)", 0.5, 0.5},
	}
	for _, s := range settings {
		cfg := sim.DefaultConfig(5)
		cfg.Seed = seed
		cfg.Seconds = 20
		cfg.Runs = 8
		if full {
			cfg.Seconds = 60
			cfg.Runs = 20
		}
		cfg.IncludeOptimal = false
		cfg.Params.Alpha = s.alpha
		cfg.Params.Beta = s.beta
		results, err := sim.Run(cfg, sim.StandardAlgorithms(false)[:1])
		if err != nil {
			return err
		}
		qoe, quality, delay, variance := results[0].CDFs()
		fmt.Printf("%-26s %10.4f %10.4f %12.4f %10.4f\n",
			s.name, qoe.Mean(), quality.Mean(), delay.Mean(), variance.Mean())
	}
	fmt.Println()
	return nil
}

// extEstimation is the deterministic analog of Figs. 7/8: QoE under
// increasingly imperfect throughput estimation (EMA over delayed, noisy
// samples instead of the paper's Section IV perfect knowledge).
func extEstimation(seed int64, full bool) error {
	fmt.Println("# Extension: deterministic Fig 7/8 analog — QoE vs estimation noise (5 users)")
	fmt.Printf("%-22s %12s %12s %12s\n", "estimation", "proposed", "firefly", "pavq")
	settings := []struct {
		name         string
		alpha, noise float64
	}{
		{"perfect (Sec IV)", 0, 0},
		{"EMA, 10% noise", 0.2, 0.1},
		{"EMA, 30% noise", 0.2, 0.3},
		{"EMA, 50% noise", 0.2, 0.5},
	}
	for _, s := range settings {
		cfg := sim.DefaultConfig(5)
		cfg.Seed = seed
		cfg.Seconds = 20
		cfg.Runs = 8
		if full {
			cfg.Seconds = 60
			cfg.Runs = 20
		}
		cfg.IncludeOptimal = false
		cfg.EstimateAlpha = s.alpha
		cfg.EstimateNoise = s.noise
		results, err := sim.Run(cfg, sim.StandardAlgorithms(false))
		if err != nil {
			return err
		}
		byName := map[string]float64{}
		for _, r := range results {
			byName[r.Name] = metrics.NewCDF(r.QoE).Mean()
		}
		fmt.Printf("%-22s %12.4f %12.4f %12.4f\n",
			s.name, byName["proposed"], byName["firefly"], byName["pavq"])
	}
	fmt.Println()
	return nil
}

// extVolatility is an extension experiment: how each algorithm's mean QoE
// degrades as the network profile hardens from stable broadband through
// 4G/LTE to blockage-prone 5G mmWave.
func extVolatility(seed int64, full bool) error {
	profiles := []struct {
		name string
		kind nettrace.Kind
	}{
		{"broadband", nettrace.Broadband},
		{"lte", nettrace.LTE},
		{"mmwave", nettrace.MmWave},
	}
	fmt.Println("# Extension: QoE sensitivity to network-trace volatility (10 users)")
	fmt.Printf("%-12s %12s %12s %12s %12s\n", "profile", "proposed", "firefly", "pavq", "fairness*")
	for _, prof := range profiles {
		cfg := sim.DefaultConfig(10)
		cfg.Seed = seed
		cfg.Seconds = 20
		cfg.Runs = 6
		if full {
			cfg.Seconds = 60
			cfg.Runs = 20
		}
		cfg.IncludeOptimal = false
		cfg.NetKinds = []nettrace.Kind{prof.kind}
		results, err := sim.Run(cfg, sim.StandardAlgorithms(false))
		if err != nil {
			return err
		}
		byName := map[string]float64{}
		var fairness float64
		for _, r := range results {
			byName[r.Name] = metrics.NewCDF(r.QoE).Mean()
			if r.Name == "proposed" {
				fairness = metrics.NewCDF(r.Fairness).Mean()
			}
		}
		fmt.Printf("%-12s %12.4f %12.4f %12.4f %12.4f\n",
			prof.name, byName["proposed"], byName["firefly"], byName["pavq"], fairness)
	}
	fmt.Println("* Jain fairness index of the proposed algorithm's per-user QoE")
	fmt.Println()
	return nil
}

// extGPU is the Discussion-section provisioning experiment: GPUs needed for
// online rendering+encoding to meet the 60 FPS deadline at rising load.
func extGPU() {
	fmt.Println("# Extension: online rendering (Discussion) — GPUs for zero deadline misses at 60 FPS")
	fmt.Printf("%-14s %8s %8s\n", "tiles/slot", "level 3", "level 6")
	base := render.DefaultConfig(1)
	for _, load := range []int{8, 16, 24, 32, 45, 60} {
		g3 := render.MinGPUsFor(base, load, 3, time.Second/60, 32)
		g6 := render.MinGPUsFor(base, load, 6, time.Second/60, 32)
		fmt.Printf("%-14d %8d %8d\n", load, g3, g6)
	}
	fmt.Println()
}

// fig1a prints the tile size vs quality level curves for two contents,
// establishing convexity.
func fig1a(seed int64) {
	model := tiles.NewSizeModel(uint64(seed))
	contents := []struct {
		name string
		cell tiles.CellID
		tile tiles.TileID
	}{
		{"content-A", tiles.CellID{X: 10, Z: 4}, 0},
		{"content-B", tiles.CellID{X: -37, Z: 91}, 2},
	}
	fmt.Println("# Fig 1a: tile rate (Mbps) vs quality level (convex for every content)")
	fmt.Printf("%-8s %-6s", "level", "CRF")
	for _, c := range contents {
		fmt.Printf("%14s", c.name)
	}
	fmt.Println()
	for q := 1; q <= tiles.Levels; q++ {
		crf, _ := tiles.CRFForLevel(q)
		fmt.Printf("%-8d %-6d", q, crf)
		for _, c := range contents {
			fmt.Printf("%14.2f", model.TileRate(c.cell, c.tile, q))
		}
		fmt.Println()
	}
	fmt.Println()
}

// fig1b prints RTT CDFs at several sending rates under a 15 Mbps cap.
func fig1b(seed int64, full bool) {
	samples := 20000
	if full {
		samples = 100000 // the paper's sample count
	}
	q := netem.NewQueueSim(15)
	rng := rand.New(rand.NewSource(seed))
	rates := []float64{3, 6, 9, 12, 14}
	fmt.Printf("# Fig 1b: RTT under a 15 Mbps cap (%d samples per rate)\n", samples)
	names := make([]string, len(rates))
	cdfs := make([]*metrics.CDF, len(rates))
	for i, r := range rates {
		names[i] = fmt.Sprintf("%gMbps", r)
		cdfs[i] = metrics.NewCDF(q.RTTSamples(r, samples, rng))
	}
	fmt.Print(metrics.FormatSeries("RTT CDF (ms) by sending rate", 11, names, cdfs))
	fmt.Printf("mean RTT:")
	for i := range rates {
		fmt.Printf("  %s=%.2fms", names[i], cdfs[i].Mean())
	}
	fmt.Print("\n\n")
}

// figSim runs the Section IV simulation for N users.
func figSim(users int, seed int64, full bool, rec *obs.Recorder) error {
	cfg := sim.DefaultConfig(users)
	cfg.Seed = seed
	cfg.Recorder = rec
	if full {
		cfg.Seconds = 300
		cfg.Runs = 100
	} else {
		cfg.Seconds = 30
		cfg.Runs = 10
	}
	figure := "Fig 2"
	if users > 6 {
		figure = "Fig 3"
	}
	fmt.Printf("# %s: trace-based simulation, N=%d (%gs x %d runs)\n",
		figure, users, cfg.Seconds, cfg.Runs)
	results, err := sim.Run(cfg, sim.StandardAlgorithms(cfg.IncludeOptimal))
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %10s %10s %12s %10s\n", "algorithm", "QoE", "quality", "delay(ms)", "variance")
	for _, r := range results {
		qoe, quality, delay, variance := r.CDFs()
		fmt.Printf("%-10s %10.4f %10.4f %12.4f %10.4f\n",
			r.Name, qoe.Mean(), quality.Mean(), delay.Mean(), variance.Mean())
	}
	fmt.Println()
	return nil
}

// figTestbed runs the Section VI real-system experiment.
func figTestbed(setupID int, seed int64, full bool) error {
	setup := testbed.Setup1()
	if setupID == 2 {
		setup = testbed.Setup2()
	}
	cfg := testbed.Config{
		Setup:        setup,
		Slots:        900,
		SlotDuration: 8 * time.Millisecond,
		Seed:         seed,
		Params:       core.DefaultSystemParams(),
	}
	repeats := 2
	if full {
		cfg.Slots = 3600
		cfg.SlotDuration = time.Second / 60
		repeats = 5 // the paper's repetition count
	}
	fmt.Printf("# Fig %d: real-system run on %s (%d slots x %d repeats)\n",
		setupID+6, setup.Name, cfg.Slots, repeats)

	names := []string{"proposed", "firefly", "pavq"}
	agg := make([]metrics.Report, len(names))
	for rep := 0; rep < repeats; rep++ {
		cfg.Seed = seed + int64(rep)*1009
		results, err := testbed.RunAll(cfg)
		if err != nil {
			return err
		}
		for i, r := range results {
			agg[i].QoE += r.Aggregate.QoE / float64(repeats)
			agg[i].Quality += r.Aggregate.Quality / float64(repeats)
			agg[i].Delay += r.Aggregate.Delay / float64(repeats)
			agg[i].Variance += r.Aggregate.Variance / float64(repeats)
			agg[i].Coverage += r.Aggregate.Coverage / float64(repeats)
			agg[i].FPSFrac += r.Aggregate.FPSFrac / float64(repeats)
		}
	}
	fmt.Print(metrics.FormatComparison("average per-user metrics (delay in ms)",
		names, agg, 1000/cfg.SlotDuration.Seconds()/1000))
	if agg[1].QoE != 0 && agg[2].QoE != 0 {
		fmt.Printf("QoE improvement of proposed: vs firefly %+.1f%%, vs pavq %+.1f%%\n",
			(agg[0].QoE-agg[1].QoE)/abs(agg[1].QoE)*100,
			(agg[0].QoE-agg[2].QoE)/abs(agg[2].QoE)*100)
	}
	fmt.Println()
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
