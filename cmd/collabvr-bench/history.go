package main

// The bench trajectory and its regression gate. -history appends the JSON
// report just written by -allocator or -slotloop as one timestamped JSONL
// entry, so repeated `make bench` runs grow results/bench_history.jsonl
// into a machine-readable performance trajectory instead of overwriting
// the snapshot. -compare joins a fresh report against the committed
// baseline row by row and exits nonzero when any row's ns/op grew past
// -compare-tolerance — the CI hook for "this change made the allocator
// slower".

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

type benchHistoryEntry struct {
	Date   string          `json:"date"`
	Suite  string          `json:"suite"`
	Report json.RawMessage `json:"report"`
}

// appendBenchHistory re-reads the report file the suite just wrote and
// appends it, wrapped with a timestamp and suite tag, to the JSONL
// trajectory at historyPath.
func appendBenchHistory(historyPath, suite, reportPath string) error {
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		return fmt.Errorf("bench history: %w", err)
	}
	if !json.Valid(raw) {
		return fmt.Errorf("bench history: %s is not valid JSON", reportPath)
	}
	entry := benchHistoryEntry{
		Date:   time.Now().UTC().Format(time.RFC3339),
		Suite:  suite,
		Report: json.RawMessage(bytes.TrimSpace(raw)),
	}
	line, err := json.Marshal(&entry)
	if err != nil {
		return fmt.Errorf("bench history: %w", err)
	}
	f, err := os.OpenFile(historyPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("bench history: %w", err)
	}
	_, werr := f.Write(append(line, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("bench history: %w", werr)
	}
	fmt.Printf("# bench history: appended %s entry to %s\n", suite, historyPath)
	return nil
}

// genericRow matches both report schemas closely enough to extract one
// scalar per row: the allocator suite keys rows by name + n_users and
// reports ns_per_op; the slotloop suite keys by name + n and reports
// optimized_ns_per_op.
type genericRow struct {
	Name        string  `json:"name"`
	NUsers      int     `json:"n_users"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	OptimizedNs float64 `json:"optimized_ns_per_op"`
}

type genericReport struct {
	Rows []genericRow `json:"rows"`
}

func (r genericRow) key() string {
	n := r.NUsers
	if n == 0 {
		n = r.N
	}
	return fmt.Sprintf("%s/%d", r.Name, n)
}

func (r genericRow) ns() float64 {
	if r.NsPerOp > 0 {
		return r.NsPerOp
	}
	return r.OptimizedNs
}

func readGenericReport(path string) (*genericReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep genericReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Rows) == 0 {
		return nil, fmt.Errorf("%s: no bench rows", path)
	}
	return &rep, nil
}

// runBenchCompare gates currentPath against baselinePath: every row shared
// with the baseline must not have grown its ns/op by more than tolerance.
// Rows missing from the baseline are reported but do not fail the gate
// (new benchmarks are not regressions).
func runBenchCompare(currentPath, baselinePath string, tolerance float64) error {
	cur, err := readGenericReport(currentPath)
	if err != nil {
		return err
	}
	base, err := readGenericReport(baselinePath)
	if err != nil {
		return err
	}
	baseByKey := make(map[string]genericRow, len(base.Rows))
	for _, r := range base.Rows {
		baseByKey[r.key()] = r
	}

	fmt.Printf("# bench compare: %s vs baseline %s (tolerance %+.0f%%)\n",
		currentPath, baselinePath, tolerance*100)
	fmt.Printf("%-22s %14s %14s %9s\n", "row", "baseline ns", "current ns", "delta")
	regressed := 0
	for _, r := range cur.Rows {
		b, ok := baseByKey[r.key()]
		if !ok {
			fmt.Printf("%-22s %14s %14.0f %9s\n", r.key(), "-", r.ns(), "new")
			continue
		}
		bn, cn := b.ns(), r.ns()
		if bn <= 0 || cn <= 0 {
			continue
		}
		delta := cn/bn - 1
		verdict := fmt.Sprintf("%+.1f%%", delta*100)
		if delta > tolerance {
			verdict += " REGRESSED"
			regressed++
		}
		fmt.Printf("%-22s %14.0f %14.0f %9s\n", r.key(), bn, cn, verdict)
	}
	if regressed > 0 {
		return fmt.Errorf("%d bench row(s) regressed more than %.0f%% vs %s",
			regressed, tolerance*100, baselinePath)
	}
	fmt.Println("# bench compare: OK")
	return nil
}
