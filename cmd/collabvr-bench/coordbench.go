package main

// The -coord mode: the replicated coordinator's cost guard — a
// single-replica Propose must stay allocation-free, the coordinator-enabled
// fleet slot loop must stay within 5% of the cluster-disabled engine (after
// proving the reports bit-identical), and the 3-replica configuration's
// cost is recorded for the trajectory — written as one JSON report
// (BENCH_coord.json). The first two rows are hard gates: the run exits
// nonzero if the single-replica path allocates or drifts past the budget.

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/fleet/coord"
	"repro/internal/load"
)

type coordRow struct {
	Name string `json:"name"`
	// N is the problem scale: resident sessions for the propose rows,
	// campaign sessions for the slot-loop rows.
	N           int     `json:"n"`
	Slots       int     `json:"slots,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BaselineNs  float64 `json:"baseline_ns,omitempty"`
	CoordNs     float64 `json:"coord_ns,omitempty"`
	OverheadPct float64 `json:"overhead_pct"`
	Note        string  `json:"note,omitempty"`
}

type coordReport struct {
	Comment   string     `json:"comment"`
	GoVersion string     `json:"go_version"`
	GOOS      string     `json:"goos"`
	GOARCH    string     `json:"goarch"`
	NumCPU    int        `json:"num_cpu"`
	Date      string     `json:"date"`
	Rows      []coordRow `json:"rows"`
}

// benchCoordPropose measures Propose on an n-session resident owner map:
// place once, then flip existing sessions forever — the steady-state op mix
// the fleet slot loop issues. At 1 replica this must be allocation-free.
func benchCoordPropose(replicas, sessions int) coordRow {
	build := func() *coord.Cluster {
		c := coord.New(coord.Config{Replicas: replicas})
		c.Tick(0)
		for i := 0; i < sessions; i++ {
			if err := c.Propose(coord.Op{Kind: coord.OpPlace, Session: uint32(i), Shard: i % 4}); err != nil {
				panic(err)
			}
		}
		return c
	}
	c := build()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := uint32(i % sessions)
			if err := c.Propose(coord.Op{Kind: coord.OpFlip, Session: s, Shard: (i + 1) % 4, From: i % 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	return coordRow{
		Name:        fmt.Sprintf("propose_%d_replica", replicas),
		N:           sessions,
		AllocsPerOp: r.AllocsPerOp(),
		NsPerOp:     float64(r.NsPerOp()),
		Note:        fmt.Sprintf("steady-state flip on a %d-session owner map, %d replica(s)", sessions, replicas),
	}
}

// benchCoordSlotloop times the fleet campaign with the coordinator at
// `replicas` against the cluster-disabled engine (Coordinators: -1), after
// proving the two produce bit-identical reports. Interleaved best-of-`reps`
// wall times keep scheduler noise out of the overhead gate.
func benchCoordSlotloop(seed int64, sessions, horizon, replicas, reps int) (coordRow, error) {
	w, err := slotloopWorkload(seed, sessions, horizon)
	if err != nil {
		return coordRow{}, err
	}
	run := func(coordinators int) (float64, *load.FleetReport, error) {
		cfg := load.FleetSimConfig{Shards: 4, Coordinators: coordinators}
		start := time.Now()
		rep, err := load.SimulateFleet(w, cfg)
		return float64(time.Since(start).Nanoseconds()), rep, err
	}

	// Differential first: the overhead number is worthless if the
	// coordinator-routed engine changes a single byte of the outcome.
	_, base, err := run(-1)
	if err != nil {
		return coordRow{}, err
	}
	_, routed, err := run(replicas)
	if err != nil {
		return coordRow{}, err
	}
	if routed.Coord == nil || routed.Coord.Commits == 0 {
		return coordRow{}, fmt.Errorf("coordinator-routed campaign committed nothing at %d replica(s)", replicas)
	}
	if replicas == 1 {
		clone := *routed
		clone.Coord = nil
		if !reflect.DeepEqual(&clone, base) {
			return coordRow{}, fmt.Errorf("single-replica coordinator campaign diverged from the cluster-disabled engine")
		}
	}

	baseNs, coordNs := 0.0, 0.0
	for i := 0; i < reps; i++ {
		bNs, _, err := run(-1)
		if err != nil {
			return coordRow{}, err
		}
		cNs, _, err := run(replicas)
		if err != nil {
			return coordRow{}, err
		}
		if i == 0 || bNs < baseNs {
			baseNs = bNs
		}
		if i == 0 || cNs < coordNs {
			coordNs = cNs
		}
	}
	row := coordRow{
		Name:       fmt.Sprintf("fleet_slotloop_%d_replica", replicas),
		N:          len(w.Sessions),
		Slots:      horizon,
		BaselineNs: baseNs,
		CoordNs:    coordNs,
		Note:       fmt.Sprintf("whole-campaign wall time, coordinator-routed vs cluster-disabled, best of %d interleaved runs", reps),
	}
	if baseNs > 0 {
		row.OverheadPct = (coordNs - baseNs) / baseNs * 100
	}
	return row, nil
}

// runCoordBench executes the coordinator cost guard and writes the JSON
// report to outPath. The single-replica rows are gates: nonzero allocs or
// >5% slot-loop overhead is an error, not a data point.
func runCoordBench(seed int64, outPath string) error {
	report := coordReport{
		Comment: "replicated-coordinator cost: single-replica Propose must not allocate and the " +
			"coordinator-routed fleet slot loop must stay within 5% of the cluster-disabled engine",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Date:      time.Now().UTC().Format(time.RFC3339),
	}

	proposeRow := benchCoordPropose(1, 10_000)
	report.Rows = append(report.Rows, proposeRow)
	report.Rows = append(report.Rows, benchCoordPropose(3, 10_000))

	loopRow, err := benchCoordSlotloop(seed, 2000, 1200, 1, 5)
	if err != nil {
		return err
	}
	report.Rows = append(report.Rows, loopRow)
	threeRow, err := benchCoordSlotloop(seed, 2000, 1200, 3, 3)
	if err != nil {
		return err
	}
	report.Rows = append(report.Rows, threeRow)

	raw, err := json.MarshalIndent(&report, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(raw, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("# Coordinator benchmark (%s %s/%s, %d cpu)\n",
		report.GoVersion, report.GOOS, report.GOARCH, report.NumCPU)
	fmt.Printf("%-24s %8s %10s %14s %14s %9s\n", "path", "n", "allocs/op", "baseline", "coord", "overhead")
	for _, row := range report.Rows {
		base := row.NsPerOp
		if row.BaselineNs > 0 {
			base = row.BaselineNs
		}
		fmt.Printf("%-24s %8d %10d %12.0fns %12.0fns %+8.2f%%\n",
			row.Name, row.N, row.AllocsPerOp, base, row.CoordNs, row.OverheadPct)
	}
	fmt.Printf("# report written to %s\n", outPath)

	if proposeRow.AllocsPerOp != 0 {
		return fmt.Errorf("single-replica Propose allocates %d/op, want 0", proposeRow.AllocsPerOp)
	}
	if loopRow.OverheadPct > 5 {
		return fmt.Errorf("single-replica coordinator adds %.2f%% slot-loop overhead, budget 5%%", loopRow.OverheadPct)
	}
	fmt.Println("coord cost gates: OK (0 allocs/op, overhead within 5%)")
	return nil
}
