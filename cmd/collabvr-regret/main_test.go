package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// writeDecisions exports a small known decision stream and returns its path.
func writeDecisions(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "decisions.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(obs.RecorderOptions{RingSize: 8, Writer: f})
	rec.Record(&obs.SlotRecord{
		Algorithm: "dvgreedy", Slot: 1, HasRegret: true, Regret: 2.0,
		SessionIDs: []uint32{10, 11},
		UserRegret: []float64{1.5, 0.5},
		Rejections: []obs.Rejection{{User: 0, Level: 3, Constraint: obs.ConstraintBudget}},
	})
	rec.Record(&obs.SlotRecord{
		Algorithm: "dvgreedy", Slot: 2,
		Alternatives: []obs.Alternative{{User: 0, Level: 2, Gain: 1.5, Reason: obs.ConstraintBudget}},
	})
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAttributionReport(t *testing.T) {
	path := writeDecisions(t)
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"regret attribution", "budget", "structural", "forgone gain"} {
		if !strings.Contains(text, want) {
			t.Errorf("report lacks %q:\n%s", want, text)
		}
	}
}

func TestRunJSONReport(t *testing.T) {
	path := writeDecisions(t)
	var out bytes.Buffer
	if err := run([]string{"-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	var rep obs.RegretReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Slots != 2 || rep.TotalRegret != 2 || rep.Rows != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunToleratesLiveTail(t *testing.T) {
	path := writeDecisions(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(t.TempDir(), "torn.jsonl")
	if err := os.WriteFile(torn, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{torn}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "skipped 1 partial trailing line") {
		t.Fatalf("no skip note:\n%s", out.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("junk\n{\"algorithm\":\"x\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{bad}, &out); err == nil {
		t.Fatal("interior corruption accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}, &out); err == nil {
		t.Fatal("empty input accepted")
	}
}

// TestRunTournamentDeterministic: the CLI's tournament mode produces a
// byte-identical ranked table for a fixed seed, and the table ranks every
// default candidate.
func TestRunTournamentDeterministic(t *testing.T) {
	args := []string{"-tournament", "-sessions", "4", "-slots", "120",
		"-budget", "60", "-seed", "7", "-regret-resolution", "2"}
	var out1, out2 bytes.Buffer
	if err := run(args, &out1); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &out2); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("tournament output differs between identical runs:\n%s\nvs\n%s",
			out1.String(), out2.String())
	}
	text := out1.String()
	for _, want := range []string{"policy tournament", "dvgreedy", "dvgreedy-scan",
		"firefly", "pavq", "uniform", "dvgreedy-alpha2x"} {
		if !strings.Contains(text, want) {
			t.Errorf("table lacks %q:\n%s", want, text)
		}
	}
	if err := run([]string{"-tournament", "somefile.jsonl"}, &out1); err == nil {
		t.Error("-tournament with input files accepted")
	}
}

// TestRunTournamentJSON: -tournament -json emits a parseable ranked result.
func TestRunTournamentJSON(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-tournament", "-json", "-sessions", "3", "-slots", "60",
		"-budget", "60", "-skip-regret"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Entries []struct {
			Rank    int     `json:"rank"`
			Name    string  `json:"name"`
			Fitness float64 `json:"fitness"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) < 7 || res.Entries[0].Rank != 1 {
		t.Fatalf("entries = %+v", res.Entries)
	}
}
