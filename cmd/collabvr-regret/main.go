// Command collabvr-regret turns decision JSONL exports (collabvr-loadgen
// -decisions-out, collabvr-sim -trace-out) into a regret-attribution report:
// which sessions, in which slots, lost how much objective value, and why
// (budget rejection, per-user cap, unprofitable counterfactual, channel
// estimate error, or the structural residue of the greedy heuristic).
//
// With -tournament it instead runs the deterministic policy tournament:
// every candidate allocator replays the identical seeded workload through
// the virtual-time engine and the ranked fitness table is printed. The
// ranking is bit-stable for a fixed seed.
//
// Usage:
//
//	collabvr-regret decisions.jsonl
//	collabvr-regret -json decisions.jsonl other.jsonl
//	collabvr-loadgen -decisions-out /dev/stdout ... | collabvr-regret -
//	collabvr-regret -tournament -sessions 8 -slots 600 -budget 80 -seed 7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/load"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "collabvr-regret:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("collabvr-regret", flag.ContinueOnError)
	var (
		asJSON = fs.Bool("json", false, "emit the report as JSON instead of text")
		topN   = fs.Int("top", 10, "worst decisions and top sessions to print")
		capErr = fs.Float64("cap-err-threshold", 0.25, "|relative capacity estimate error| above which regret is attributed to the channel estimator")

		tournament = fs.Bool("tournament", false, "run the deterministic policy tournament instead of reading decision files")
		arrivals   = fs.String("arrivals", "steady", "tournament: arrival shape (steady, poisson, mmpp, flash, diurnal)")
		sessions   = fs.Int("sessions", 8, "tournament: session count")
		rate       = fs.Float64("rate", 10, "tournament: mean arrival rate per second (stochastic shapes)")
		meanHold   = fs.Float64("mean-hold", 0, "tournament: mean session duration in seconds (0 = whole horizon)")
		slots      = fs.Int("slots", 600, "tournament: workload horizon in slots")
		seed       = fs.Int64("seed", 1, "tournament: workload seed (same seed, same ranking, bit for bit)")
		budget     = fs.Float64("budget", 400, "tournament: server throughput budget in Mbps")
		counterK   = fs.Int("counterfactual-k", 3, "tournament: top-K alternatives recorded per decision")
		skipRegret = fs.Bool("skip-regret", false, "tournament: skip the per-slot DP reference (faster; regret scores as zero)")
		regretRes  = fs.Float64("regret-resolution", 0, "tournament: DP budget grid step in Mbps (0 = budget/2048)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *tournament {
		if fs.NArg() > 0 {
			return fmt.Errorf("-tournament takes no input files (it generates its own workload)")
		}
		w, err := load.Generate(load.Config{
			Shape:        load.Shape(*arrivals),
			Seed:         *seed,
			HorizonSlots: *slots,
			Sessions:     *sessions,
			RatePerSec:   *rate,
			MeanHoldSec:  *meanHold,
		})
		if err != nil {
			return err
		}
		result, err := load.RunTournament(w, load.TournamentConfig{
			Sim: load.SimConfig{
				BudgetMbps:       *budget,
				CounterfactualK:  *counterK,
				RegretResolution: *regretRes,
			},
			SkipRegret: *skipRegret,
		})
		if err != nil {
			return err
		}
		if *asJSON {
			return writeJSON(out, result)
		}
		fmt.Fprint(out, result.Format())
		return nil
	}

	paths := fs.Args()
	if len(paths) == 0 {
		paths = []string{"-"}
	}
	attr := obs.NewRegretAttributor(obs.RegretAttributorOptions{
		CapErrThreshold: *capErr,
		TopRows:         *topN,
	})
	records, skipped := 0, 0
	for _, path := range paths {
		recs, sk, err := readFile(path)
		if err != nil {
			return err
		}
		for i := range recs {
			attr.Observe(&recs[i])
		}
		records += len(recs)
		skipped += sk
	}
	if records == 0 {
		return fmt.Errorf("no decision records in input")
	}
	if skipped > 0 && !*asJSON {
		fmt.Fprintf(out, "# skipped %d partial trailing line(s) (live writer)\n", skipped)
	}
	rep := attr.Report()
	if *asJSON {
		return writeJSON(out, rep)
	}
	fmt.Fprint(out, rep.Format())
	return nil
}

func readFile(path string) ([]obs.SlotRecord, int, error) {
	r := io.Reader(os.Stdin)
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		r = f
	}
	recs, skipped, err := obs.ReadSlotRecords(r)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	return recs, skipped, nil
}

func writeJSON(out io.Writer, v any) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
