// Command collabvr-sim runs the trace-based simulation of Section IV and
// prints the CDF series of Figs. 2 (5 users) and 3 (30 users): average QoE,
// average quality, average delivery delay, and quality variance, for the
// proposed algorithm, Firefly, modified PAVQ and (small N) the per-slot
// optimum.
//
// Usage:
//
//	collabvr-sim -users 5 -seconds 60 -runs 20
//	collabvr-sim -users 30 -seconds 300 -runs 100   # paper scale
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "collabvr-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("collabvr-sim", flag.ContinueOnError)
	var (
		users    = fs.Int("users", 5, "number of users N")
		seconds  = fs.Float64("seconds", 60, "trace length in seconds (paper: 300)")
		runs     = fs.Int("runs", 20, "independent trace draws per user (paper: 100)")
		seed     = fs.Int64("seed", 1, "random seed")
		alpha    = fs.Float64("alpha", 0.02, "QoE delay weight")
		beta     = fs.Float64("beta", 0.5, "QoE variance weight")
		optimal  = fs.Bool("optimal", false, "force the brute-force optimum on (default: only for N<=6)")
		points   = fs.Int("points", 11, "CDF points to print per series")
		csvDir   = fs.String("csv", "", "directory to dump raw per-user samples as CSV (empty = no dump)")
		traceOut = fs.String("trace-out", "", "write the per-slot decision trace as JSONL to this file (empty = disabled)")
		counterK = fs.Int("counterfactual-k", 0, "record the top-K unchosen upgrades per decision in the trace (0 = off; needs -trace-out)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := sim.DefaultConfig(*users)
	cfg.Seconds = *seconds
	cfg.Runs = *runs
	cfg.Seed = *seed
	cfg.Params.Alpha = *alpha
	cfg.Params.Beta = *beta
	if *optimal {
		cfg.IncludeOptimal = true
	}

	if *counterK > 0 && *traceOut == "" {
		return fmt.Errorf("-counterfactual-k needs -trace-out (alternatives are recorded into the decision trace)")
	}
	var rec *obs.Recorder
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		defer f.Close()
		rec = obs.NewRecorder(obs.RecorderOptions{RingSize: 256, Writer: f})
		cfg.Recorder = rec
		cfg.CounterfactualK = *counterK
	}

	figure := "Fig 2"
	if *users > 6 {
		figure = "Fig 3"
	}
	fmt.Printf("# %s-style trace-based simulation: N=%d, %gs, %d runs, alpha=%g beta=%g\n\n",
		figure, *users, *seconds, *runs, *alpha, *beta)

	results, err := sim.Run(cfg, sim.StandardAlgorithms(cfg.IncludeOptimal))
	if err != nil {
		return err
	}

	names := make([]string, len(results))
	qoeCDFs := make([]*metrics.CDF, len(results))
	qualCDFs := make([]*metrics.CDF, len(results))
	delayCDFs := make([]*metrics.CDF, len(results))
	varCDFs := make([]*metrics.CDF, len(results))
	for i, r := range results {
		names[i] = r.Name
		qoeCDFs[i], qualCDFs[i], delayCDFs[i], varCDFs[i] = r.CDFs()
	}

	fmt.Print(metrics.FormatSeries(figure+"a: average QoE CDF", *points, names, qoeCDFs))
	fmt.Println()
	fmt.Print(metrics.FormatSeries(figure+"b: average quality CDF", *points, names, qualCDFs))
	fmt.Println()
	fmt.Print(metrics.FormatSeries(figure+"c: average delivery delay CDF (ms)", *points, names, delayCDFs))
	fmt.Println()
	fmt.Print(metrics.FormatSeries(figure+"d: quality variance CDF", *points, names, varCDFs))
	fmt.Println()

	fmt.Printf("# mean across runs and users\n")
	fmt.Printf("%-10s %10s %10s %12s %10s\n", "algorithm", "QoE", "quality", "delay(ms)", "variance")
	for i := range results {
		fmt.Printf("%-10s %10.4f %10.4f %12.4f %10.4f\n",
			names[i], qoeCDFs[i].Mean(), qualCDFs[i].Mean(), delayCDFs[i].Mean(), varCDFs[i].Mean())
	}

	if *csvDir != "" {
		if err := dumpCSV(*csvDir, results); err != nil {
			return err
		}
		fmt.Printf("# raw samples written to %s\n", *csvDir)
	}
	if rec != nil {
		fmt.Println()
		fmt.Print(rec.Summary().Format())
		if err := rec.Err(); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		fmt.Printf("# decision trace written to %s\n", *traceOut)
	}
	return nil
}

// dumpCSV writes one file per algorithm with the raw per-(run,user)
// samples, ready for external plotting.
func dumpCSV(dir string, results []*sim.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range results {
		f, err := os.Create(filepath.Join(dir, "samples-"+r.Name+".csv"))
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		if err := w.Write([]string{"qoe", "quality", "delay_ms", "variance"}); err != nil {
			f.Close()
			return err
		}
		for i := range r.QoE {
			rec := []string{
				strconv.FormatFloat(r.QoE[i], 'g', 8, 64),
				strconv.FormatFloat(r.Quality[i], 'g', 8, 64),
				strconv.FormatFloat(r.Delay[i], 'g', 8, 64),
				strconv.FormatFloat(r.Variance[i], 'g', 8, 64),
			}
			if err := w.Write(rec); err != nil {
				f.Close()
				return err
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
