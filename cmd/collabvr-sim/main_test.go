package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTiny(t *testing.T) {
	err := run([]string{"-users", "2", "-seconds", "2", "-runs", "2", "-points", "3"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunForcedOptimal(t *testing.T) {
	err := run([]string{"-users", "2", "-seconds", "1", "-runs", "1", "-optimal"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCSVDump(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-users", "2", "-seconds", "1", "-runs", "2", "-csv", dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"proposed", "firefly", "pavq"} {
		data, err := os.ReadFile(filepath.Join(dir, "samples-"+name+".csv"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Count(string(data), "\n")
		if lines != 1+2*2 { // header + runs*users
			t.Errorf("%s: %d lines, want 5", name, lines)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-users", "x"}); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestRunInvalidConfig(t *testing.T) {
	if err := run([]string{"-users", "0"}); err == nil {
		t.Fatal("zero users should error")
	}
}
