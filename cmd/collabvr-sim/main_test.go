package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestRunTiny(t *testing.T) {
	err := run([]string{"-users", "2", "-seconds", "2", "-runs", "2", "-points", "3"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunForcedOptimal(t *testing.T) {
	err := run([]string{"-users", "2", "-seconds", "1", "-runs", "1", "-optimal"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCSVDump(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-users", "2", "-seconds", "1", "-runs", "2", "-csv", dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"proposed", "firefly", "pavq"} {
		data, err := os.ReadFile(filepath.Join(dir, "samples-"+name+".csv"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Count(string(data), "\n")
		if lines != 1+2*2 { // header + runs*users
			t.Errorf("%s: %d lines, want 5", name, lines)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-users", "x"}); err == nil {
		t.Fatal("bad flag should error")
	}
}

func TestRunInvalidConfig(t *testing.T) {
	if err := run([]string{"-users", "0"}); err == nil {
		t.Fatal("zero users should error")
	}
}

// TestRunTraceOutJSONL is the acceptance check of the decision flight
// recorder: a 5-user simulation with the optimum enabled must produce a
// JSONL trace with one record per slot per algorithm, chosen qualities,
// rejection records, budget utilization and a nonnegative regret, and the
// greedy's regret must respect the 1/2-approximation of Theorem 1.
func TestRunTraceOutJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	err := run([]string{
		"-users", "5", "-seconds", "1", "-runs", "2", "-optimal",
		"-points", "3", "-trace-out", path,
	})
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	algorithms := map[string]int{}
	var optMeanValue, propRegretSum float64
	var propRecords int
	for _, line := range lines {
		var rec obs.SlotRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		algorithms[rec.Algorithm]++
		if len(rec.Levels) != 5 {
			t.Fatalf("record has %d levels, want 5: %+v", len(rec.Levels), rec)
		}
		if rec.Utilization < 0 || rec.Utilization > 1+1e-9 {
			t.Errorf("utilization %v outside [0,1]", rec.Utilization)
		}
		if !rec.HasRegret || rec.Regret < 0 {
			t.Errorf("record without nonnegative regret: %+v", rec)
		}
		switch rec.Algorithm {
		case "optimal":
			optMeanValue += rec.Value
		case "proposed":
			propRegretSum += rec.Regret
			propRecords++
		}
	}
	// One record per slot per algorithm: 60 slots/s * 1 s * 2 runs each.
	const wantPerAlg = 60 * 2
	for _, name := range []string{"proposed", "firefly", "pavq", "optimal"} {
		if algorithms[name] != wantPerAlg {
			t.Errorf("algorithm %s has %d records, want %d", name, algorithms[name], wantPerAlg)
		}
	}
	if propRecords == 0 {
		t.Fatal("no proposed records")
	}
	optMeanValue /= float64(algorithms["optimal"])
	meanRegret := propRegretSum / float64(propRecords)
	// Theorem 1: proposed >= optimal/2 per slot, so mean regret <= mean
	// optimal value / 2.
	if optMeanValue > 0 && meanRegret > 0.5*optMeanValue {
		t.Errorf("proposed mean regret %v violates the 1/2-approximation bound (optimal mean %v)",
			meanRegret, optMeanValue)
	}
}
