// Command collabvr-fleet runs session workloads against a sharded edge
// fleet: N server shards behind a scored router that places arriving
// sessions, periodically rebalances the global bandwidth budget B(t) from
// observed per-shard demand, and live-migrates sessions off killed or
// draining shards instead of dropping them.
//
// The default engine is the deterministic virtual-time fleet simulator
// (same workload + seed, bit-identical report); -mode live drives real
// in-process server shards over loopback sockets with one emulated client
// per session, migrating through the reconnect/Welcome-resume path.
//
// Usage:
//
//	collabvr-fleet -shards 3 -sessions 9 -slots 1200
//	collabvr-fleet -shards 3 -scorer slo-burn -chaos examples/chaos/fleet.json
//	collabvr-fleet -chaos examples/chaos/fleet.json -verify-recovery
//	collabvr-fleet -coordinators 3 -chaos examples/chaos/coordkill.json -verify-recovery
//	collabvr-fleet -mode live -shards 2 -sessions 6 -slotms 5
//	collabvr-fleet -find-capacity -shards 3 -budget 300 -miss-target 0.01
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"reflect"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/fleet/coord"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "collabvr-fleet:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("collabvr-fleet", flag.ContinueOnError)
	var (
		sessions = fs.Int("sessions", 9, "steady concurrent session count")
		slots    = fs.Int("slots", 1200, "workload horizon in slots")
		sps      = fs.Float64("sps", 60, "slots per second on the workload timeline")
		seed     = fs.Int64("seed", 42, "workload seed (same seed, same run, bit for bit in sim mode)")

		shards     = fs.Int("shards", 3, "server shard count")
		zones      = fs.Int("zones", 0, "locality zone count (0 = one zone per shard)")
		scorerName = fs.String("scorer", "least-loaded", "placement scorer: least-loaded, locality, slo-burn")
		rebSlots   = fs.Int("rebalance-slots", 0, "budget rebalance cadence in slots (0 = default)")
		migSlots   = fs.Int("migration-slots", 0, "sim: forced-miss blackout per migrated session (0 = default 2, negative = none)")

		coordinators = fs.Int("coordinators", 1, "coordinator replica count for the replicated owner map (2f+1 tolerates f crashes; 1 = zero-cost single replica)")
		leaseSlots   = fs.Int("lease-slots", 0, "coordinator leader-lease length in slots — the election timeout (0 = default 8)")

		mode   = fs.String("mode", "sim", "execution engine: sim (virtual time) or live (loopback sockets)")
		slotMs = fs.Float64("slotms", 0, "live-mode wall-clock slot duration in ms (0 = 1000/sps)")
		algo   = fs.String("algo", "dvgreedy", "allocator: dvgreedy, dvgreedy-scan, density, value, optimal, firefly, pavq")
		budget = fs.Float64("budget", 400, "GLOBAL fleet throughput budget B(t) in Mbps, split across shards")

		chaosPath  = fs.String("chaos", "", "chaos profile JSON (shard_kill/shard_drain drive the fleet layer)")
		chaosCheck = fs.Bool("chaos-check", false, "validate the -chaos profile, print its schedule, and exit")

		verifyRecovery = fs.Bool("verify-recovery", false, "sim: assert the chaos campaign degrades-not-drops, reproduces bit-for-bit, and recovers tail quality to within 10% of fault-free")

		findCap    = fs.Bool("find-capacity", false, "binary-search fleet and per-shard session capacity under -miss-target")
		missTarget = fs.Float64("miss-target", 0.01, "capacity-search deadline-miss rate target")
		capLo      = fs.Int("cap-lo", 1, "capacity-search floor (sessions)")
		capHi      = fs.Int("cap-hi", 256, "capacity-search ceiling (sessions)")

		httpAddr      = fs.String("http", "", "observability HTTP listen address serving /metrics and /debug/fleet (empty = disabled)")
		placementsOut = fs.String("placements-out", "", "write placement-decision records to this JSONL file")
		sloOn         = fs.Bool("slo", false, "track per-session QoE SLO burn rates (implied by -chaos)")
		evacOn        = fs.Bool("evac", false, "evacuate sessions off shards whose rolling SLO pressure pages (implies -slo; sim and live modes)")
		healthOut     = fs.String("health-out", "", "write the health time-series export to this JSONL file (enables health sampling)")
		healthEvery   = fs.Int("health-every", 1, "health sampling cadence in slots")
		verbose       = fs.Bool("v", false, "verbose logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, err := fleet.ScorerByName(*scorerName); err != nil {
		return err
	}
	if _, err := allocatorByName(*algo); err != nil {
		return err
	}
	if *mode != "sim" && *mode != "live" {
		return fmt.Errorf("unknown mode %q (want sim or live)", *mode)
	}
	if *evacOn && *shards < 2 {
		return fmt.Errorf("-evac needs -shards > 1 (evacuated sessions need somewhere to go)")
	}

	var chaosProf *chaos.Profile
	if *chaosPath != "" {
		var err error
		chaosProf, err = chaos.LoadProfile(*chaosPath)
		if err != nil {
			return err
		}
		if m := chaosProf.MaxShard(); m >= *shards {
			return fmt.Errorf("chaos profile targets shard %d but -shards is %d", m, *shards)
		}
		if m := chaosProf.MaxReplica(); m >= *coordinators {
			return fmt.Errorf("chaos profile targets coordinator replica %d but -coordinators is %d", m, *coordinators)
		}
	}
	if *chaosCheck {
		if chaosProf == nil {
			return fmt.Errorf("-chaos-check needs -chaos <profile.json>")
		}
		fmt.Fprint(out, chaosSummary(chaosProf))
		return nil
	}
	if *verifyRecovery {
		if *mode != "sim" {
			return fmt.Errorf("-verify-recovery needs -mode sim (determinism is a virtual-time property)")
		}
		if !chaosProf.HasShardFaults() && !chaosProf.HasCoordFaults() {
			return fmt.Errorf("-verify-recovery needs -chaos with shard_kill/shard_drain or coord_kill/coord_partition faults")
		}
	}

	params := core.DefaultSystemParams()
	reg := obs.NewRegistry()
	var slo *obs.SLOMonitor
	// A chaos campaign implies SLO tracking and the breaker, as in
	// collabvr-loadgen: the resilience path is SLO state -> breaker cap.
	if *sloOn || chaosProf != nil || *evacOn {
		slo = obs.NewSLOMonitor(obs.DefaultSLOConfig(), reg)
	}
	var brk *obs.Breaker
	if chaosProf != nil {
		bcfg := obs.DefaultBreakerConfig()
		bcfg.Levels = params.Levels
		brk = obs.NewBreaker(bcfg, reg)
	}
	ropts := obs.PlacementRecorderOptions{RingSize: 512, Metrics: reg}
	if *placementsOut != "" {
		f, err := os.Create(*placementsOut)
		if err != nil {
			return fmt.Errorf("placement export: %w", err)
		}
		defer f.Close()
		ropts.Writer = f
	}
	rec := obs.NewPlacementRecorder(ropts)

	// Health plane: one store carries the coordinator's fleet series and the
	// sampler's registry/SLO series so /debug/health and the export are a
	// single document.
	var (
		healthStore   *tsdb.Store
		healthSampler *tsdb.Sampler
	)
	if *healthOut != "" || *evacOn {
		healthStore = tsdb.New(tsdb.Options{})
		healthSampler = tsdb.NewSampler(tsdb.SamplerOptions{
			Store:      healthStore,
			Registry:   reg,
			SLO:        slo,
			EverySlots: *healthEvery,
		})
	}

	// /debug/fleet and /debug/coord serve whatever the most recent run
	// produced: a report-derived snapshot once a run has finished.
	var (
		snapMu      sync.Mutex
		snap        func(n int) obs.FleetSnapshot
		coordOut    *load.CoordOutcome
		coordStatus func() coord.Status
	)
	setSnap := func(f func(n int) obs.FleetSnapshot, co *load.CoordOutcome) {
		snapMu.Lock()
		snap = f
		coordOut = co
		snapMu.Unlock()
	}
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("observability listen: %w", err)
		}
		defer ln.Close()
		mopts := obs.MuxOptions{SLO: slo, Fleet: func(n int) obs.FleetSnapshot {
			snapMu.Lock()
			f := snap
			snapMu.Unlock()
			if f == nil {
				// Mid-run: no report yet, but the shared recorder already
				// carries the placement tail and counters.
				return obs.FleetSnapshot{
					Scorer:           *scorerName,
					GlobalBudgetMbps: *budget,
					Placements:       reg.Counter("collabvr_fleet_placements_total").Value(),
					Migrations:       int(reg.Counter("collabvr_fleet_migrations_total").Value()),
					Recent:           rec.Recent(n),
				}
			}
			return f(n)
		}}
		if healthStore != nil {
			mopts.Health = tsdb.Handler(healthStore, nil)
		}
		// Live mode serves the cluster's full status document (leadership,
		// lease, per-replica log frontier) mid-run; sim mode serves the
		// finished run's coord outcome.
		mopts.Coord = http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			snapMu.Lock()
			st := coordStatus
			co := coordOut
			snapMu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if st != nil {
				_ = enc.Encode(st())
				return
			}
			_ = enc.Encode(co)
		})
		go http.Serve(ln, obs.NewMuxOpts(reg, nil, mopts))
		fmt.Fprintf(out, "observability on http://%s/metrics (/debug/fleet)\n", ln.Addr())
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}

	newAlloc := func() core.Allocator {
		a, _ := allocatorByName(*algo)
		return a
	}
	rebalance := fleet.RebalanceConfig{EverySlots: *rebSlots}
	// withChaos selects the fault schedule; withObs wires the shared
	// registry/SLO/breaker/recorder. Verification runs use withObs=false so
	// stateful observers carried across runs cannot perturb the bit-for-bit
	// comparison.
	simCfg := func(withChaos, withObs bool) load.FleetSimConfig {
		cfg := load.FleetSimConfig{
			Shards:               *shards,
			Zones:                *zones,
			Scorer:               *scorerName,
			Rebalance:            rebalance,
			MigrationOutageSlots: *migSlots,
			Coordinators:         *coordinators,
			Coord:                coord.Config{LeaseSlots: *leaseSlots},
		}
		cfg.Sim = load.SimConfig{
			Params:       params,
			NewAllocator: newAlloc,
			AllocName:    *algo,
			BudgetMbps:   *budget,
		}
		if withChaos {
			cfg.Sim.Chaos = chaosProf
		}
		if withObs {
			cfg.Recorder = rec
			cfg.Sim.Metrics = reg
			cfg.Sim.SLO = slo
			cfg.Sim.Breaker = brk
			cfg.Sim.Health = healthSampler
			cfg.Health = healthStore
			if *evacOn {
				cfg.Evac = fleet.EvacConfig{Enabled: true}
			}
		}
		return cfg
	}
	workload := func(n int) (*load.Workload, error) {
		return load.Generate(load.Config{
			Shape:          load.Steady,
			Seed:           *seed,
			HorizonSlots:   *slots,
			SlotsPerSecond: *sps,
			Sessions:       n,
		})
	}

	if *findCap {
		probe := func(n, nShards int, globalBudget float64) (float64, error) {
			w, err := workload(n)
			if err != nil {
				return 0, err
			}
			cfg := simCfg(false, false)
			cfg.Shards = nShards
			cfg.Sim.BudgetMbps = globalBudget
			rep, err := load.SimulateFleet(w, cfg)
			if err != nil {
				return 0, err
			}
			miss := rep.AggregateMissRate()
			fmt.Fprintf(out, "probe %5d sessions x %d shard(s) @ %.0f Mbps: deadline-miss %.4f\n",
				n, nShards, globalBudget, miss)
			return miss, nil
		}
		res, err := load.FindFleetCapacity(*capLo, *capHi, *missTarget, *shards, *budget, probe)
		if err != nil {
			return err
		}
		fmt.Fprint(out, res.Format())
		return nil
	}

	w, err := workload(*sessions)
	if err != nil {
		return err
	}

	// finish prints the evacuation tally and writes the health export;
	// shared by the sim and live paths.
	finish := func(rep *load.FleetReport) error {
		if *evacOn {
			fmt.Fprintf(out, "evac: %d session(s) moved in %d batch(es)\n",
				rep.Evacuations, rep.EvacBatches)
		}
		if *healthOut != "" {
			f, err := os.Create(*healthOut)
			if err != nil {
				return fmt.Errorf("health export: %w", err)
			}
			err = healthStore.WriteJSONL(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("health export: %w", err)
			}
			fmt.Fprintf(out, "health: exported %d series to %s\n", healthStore.Len(), *healthOut)
		}
		return nil
	}

	if *mode == "live" {
		slotDur := time.Duration(0)
		if *slotMs > 0 {
			slotDur = time.Duration(*slotMs * float64(time.Millisecond))
		}
		lcfg := load.FleetLiveConfig{
			Shards:    *shards,
			Zones:     *zones,
			Scorer:    *scorerName,
			Rebalance: rebalance,
			Recorder:  rec,
			Live: load.LiveConfig{
				Params:       params,
				NewAllocator: newAlloc,
				AllocName:    *algo,
				BudgetMbps:   *budget,
				SlotDuration: slotDur,
				Metrics:      reg,
				SLO:          slo,
				Breaker:      brk,
				Chaos:        chaosProf,
				Logf:         logf,
			},
			Health:       healthStore,
			Sampler:      healthSampler,
			Coordinators: *coordinators,
			Coord:        coord.Config{LeaseSlots: *leaseSlots},
		}
		if *evacOn {
			lcfg.Evac = fleet.EvacConfig{Enabled: true}
		}
		if chaosProf != nil {
			retrySlot := slotDur
			if retrySlot <= 0 && *sps > 0 {
				retrySlot = time.Duration(float64(time.Second) / *sps)
			}
			lcfg.Live.RetryPolicy = transport.DefaultRetryPolicy(retrySlot)
		}
		lcfg.CoordDebug = func(status func() coord.Status) {
			snapMu.Lock()
			coordStatus = status
			snapMu.Unlock()
		}
		rep, err := load.RunLiveFleet(w, lcfg)
		if err != nil {
			return err
		}
		setSnap(func(n int) obs.FleetSnapshot { return reportSnapshot(rep, rec, *budget, n) }, rep.Coord)
		fmt.Fprint(out, rep.FormatFleet())
		return finish(rep)
	}

	rep, err := load.SimulateFleet(w, simCfg(true, true))
	if err != nil {
		return err
	}
	setSnap(func(n int) obs.FleetSnapshot { return reportSnapshot(rep, rec, *budget, n) }, rep.Coord)
	fmt.Fprint(out, rep.FormatFleet())

	if *verifyRecovery {
		if err := verifyFleetRecovery(out, w, simCfg, chaosProf); err != nil {
			return err
		}
	}
	if *placementsOut != "" {
		if err := rec.Err(); err != nil {
			return fmt.Errorf("placement export: %w", err)
		}
		fmt.Fprintf(out, "placements: exported %d records to %s\n", rec.Records(), *placementsOut)
	}
	if slo != nil {
		fmt.Fprintf(out, "slo: warn transitions %d, page transitions %d\n",
			reg.Counter("collabvr_slo_warn_transitions_total").Value(),
			reg.Counter("collabvr_slo_page_transitions_total").Value())
	}
	return finish(rep)
}

// verifyFleetRecovery runs the campaign three times on fresh,
// observer-free configs to assert the resilience contract: shard faults
// degrade instead of dropping, identical runs reproduce bit for bit, and
// tail quality recovers to within 10% of the fault-free run.
func verifyFleetRecovery(out io.Writer, w *load.Workload,
	simCfg func(withChaos, withObs bool) load.FleetSimConfig, prof *chaos.Profile) error {
	faulted, err := load.SimulateFleet(w, simCfg(true, false))
	if err != nil {
		return err
	}

	// Degrades, not drops: every spawned session completed.
	if faulted.Completed != faulted.Spawned || faulted.Failed > 0 {
		return fmt.Errorf("verify-recovery: %d/%d sessions completed (%d failed) — shard faults dropped sessions",
			faulted.Completed, faulted.Spawned, faulted.Failed)
	}
	if prof.HasShardFaults() && faulted.Migrations == 0 {
		return fmt.Errorf("verify-recovery: shard faults migrated no sessions")
	}
	fmt.Fprintln(out, "degrades-not-drops: OK")

	// Bit for bit: an identical second run must be deep-equal.
	again, err := load.SimulateFleet(w, simCfg(true, false))
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(faulted, again) {
		return fmt.Errorf("verify-recovery: two identical runs produced different reports — determinism broken")
	}
	fmt.Fprintln(out, "determinism: OK")

	// Tail quality against the fault-free run, after the migrations settle.
	clean, err := load.SimulateFleet(w, simCfg(false, false))
	if err != nil {
		return err
	}
	tailFrom := lastShardFaultSlot(prof) + 100
	tail := faulted.MeanSlotQuality(tailFrom, len(faulted.SlotQuality))
	want := clean.MeanSlotQuality(tailFrom, len(clean.SlotQuality))
	if want <= 0 {
		return fmt.Errorf("verify-recovery: no tail window after slot %d (horizon %d too short)",
			tailFrom, faulted.HorizonSlots)
	}
	if tail < 0.90*want {
		return fmt.Errorf("verify-recovery: post-fault tail quality %.3f < 90%% of fault-free %.3f", tail, want)
	}
	fmt.Fprintf(out, "recovery: OK (tail quality %.3f vs fault-free %.3f from slot %d)\n", tail, want, tailFrom)

	// Coordinator failover contract: when the campaign kills or partitions
	// coordinator replicas, every alive replica must still converge to one
	// owner map (no split brain), and a leader loss must have cost only a
	// bounded leaderless window.
	if prof.HasCoordFaults() {
		co := faulted.Coord
		if co == nil {
			return fmt.Errorf("verify-recovery: coord faults ran but the report has no coord outcome")
		}
		if !co.Converged {
			return fmt.Errorf("verify-recovery: coordinator replicas did not converge — split-brain ownership")
		}
		fmt.Fprintf(out, "coord failover: OK (term %d, elections %d, rejected %d, leaderless slots %d, converged)\n",
			co.Term, co.Elections, co.Rejected, co.LeaderlessSlots)
	}
	return nil
}

// lastShardFaultSlot returns the latest slot a shard fault begins.
func lastShardFaultSlot(p *chaos.Profile) int {
	last := 0
	for _, f := range p.ShardFaults() {
		if f.StartSlot > last {
			last = f.StartSlot
		}
	}
	return last
}

// reportSnapshot derives the /debug/fleet document from a finished run.
func reportSnapshot(rep *load.FleetReport, rec *obs.PlacementRecorder, global float64, n int) obs.FleetSnapshot {
	snap := obs.FleetSnapshot{
		Scorer:           rep.Scorer,
		GlobalBudgetMbps: global,
		Slot:             rep.HorizonSlots,
		Placements:       uint64(rep.Placements),
		Migrations:       rep.Migrations,
		Rebalances:       rep.Rebalances,
		Evacuations:      rep.Evacuations,
		RingCapacity:     rec.RingCapacity(),
		RingDropped:      rec.Dropped(),
		Recent:           rec.Recent(n),
	}
	for _, s := range rep.Shards {
		snap.Shards = append(snap.Shards, obs.FleetShardState{
			Shard:       s.Shard,
			Zone:        s.Zone,
			Alive:       s.KilledSlot < 0,
			Draining:    s.DrainSlot >= 0,
			BudgetMbps:  s.FinalBudgetMbps,
			Placed:      s.Placed,
			MigratedIn:  s.MigratedIn,
			MigratedOut: s.MigratedOut,
		})
	}
	return snap
}

// chaosSummary renders a profile's fault schedule for -chaos-check.
func chaosSummary(p *chaos.Profile) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "chaos profile %q: seed %d, %d fault(s)\n", p.Name, p.Seed, len(p.Faults))
	for i, f := range p.Faults {
		fmt.Fprintf(&b, "  fault %d: %-15s start slot %d", i, f.Kind, f.StartSlot)
		if f.DurationSlots > 0 {
			fmt.Fprintf(&b, ", %d slots", f.DurationSlots)
		} else {
			fmt.Fprint(&b, ", open-ended")
		}
		if len(f.Sessions) > 0 {
			fmt.Fprintf(&b, ", sessions %v", f.Sessions)
		}
		switch f.Kind {
		case chaos.FaultBurstLoss:
			fmt.Fprintf(&b, ", p_gb %g p_bg %g p_good %g p_bad %g", f.PGoodBad, f.PBadGood, f.PGood, f.PBad)
		case chaos.FaultLoss, chaos.FaultReorder, chaos.FaultDuplicate, chaos.FaultCorrupt:
			fmt.Fprintf(&b, ", p %g", f.P)
		case chaos.FaultBandwidth:
			fmt.Fprintf(&b, ", factor %g", f.Factor)
		case chaos.FaultStall, chaos.FaultSlowACK:
			fmt.Fprintf(&b, ", delay %g ms", f.DelayMs)
		case chaos.FaultShardKill, chaos.FaultShardDrain:
			fmt.Fprintf(&b, ", shard %d", f.Shard)
		case chaos.FaultCoordKill, chaos.FaultCoordPartition:
			fmt.Fprintf(&b, ", replica %d", f.Replica)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintln(&b, "profile OK")
	return b.String()
}

func allocatorByName(name string) (core.Allocator, error) {
	switch name {
	case "dvgreedy", "proposed":
		return core.NewSolverAllocator(), nil
	case "dvgreedy-scan":
		return core.DVGreedy{}, nil
	case "density":
		return core.DensityOnly{}, nil
	case "value":
		return core.ValueOnly{}, nil
	case "optimal":
		return core.Optimal{}, nil
	case "firefly":
		return baseline.NewFirefly(), nil
	case "pavq":
		return baseline.NewPAVQ(), nil
	default:
		return nil, fmt.Errorf("unknown allocator %q", name)
	}
}
