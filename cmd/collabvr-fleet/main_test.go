package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFleetSimReport(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-shards", "3", "-sessions", "6", "-slots", "300", "-budget", "300",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"fleet-sim", "spawned 6, completed 6",
		"fleet: scorer least-loaded", "placements 6",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunFleetVerifyRecovery(t *testing.T) {
	profile := filepath.Join("..", "..", "examples", "chaos", "fleet.json")
	if _, err := os.Stat(profile); err != nil {
		t.Skipf("fleet chaos profile not found: %v", err)
	}
	var out bytes.Buffer
	err := run([]string{
		"-chaos", profile, "-verify-recovery",
		"-sessions", "9", "-slots", "1200", "-seed", "42",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"degrades-not-drops: OK", "determinism: OK", "recovery: OK",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunFleetChaosCheck(t *testing.T) {
	profile := filepath.Join("..", "..", "examples", "chaos", "fleet.json")
	if _, err := os.Stat(profile); err != nil {
		t.Skipf("fleet chaos profile not found: %v", err)
	}
	var out bytes.Buffer
	if err := run([]string{"-chaos", profile, "-chaos-check"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "profile OK") {
		t.Errorf("missing validation verdict:\n%s", text)
	}
	if !strings.Contains(text, "shard") {
		t.Errorf("shard fault summary missing shard target:\n%s", text)
	}
}

func TestRunFleetFindCapacity(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-find-capacity", "-shards", "2", "-budget", "400",
		"-cap-lo", "1", "-cap-hi", "8", "-miss-target", "0.05",
		"-slots", "120", "-seed", "5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"fleet total", "per-shard knee"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunFleetPlacementsOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "placements.jsonl")
	var out bytes.Buffer
	err := run([]string{
		"-shards", "2", "-sessions", "4", "-slots", "120",
		"-placements-out", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(string(data)), "\n") + 1
	if lines != 4 {
		t.Errorf("placement JSONL has %d records, want 4:\n%s", lines, data)
	}
	if !strings.Contains(out.String(), "placements: exported 4 records") {
		t.Errorf("missing export summary:\n%s", out.String())
	}
}

func TestRunFleetHealthExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "health.jsonl")
	var out bytes.Buffer
	err := run([]string{
		"-shards", "3", "-sessions", "6", "-slots", "300", "-budget", "300",
		"-evac", "-health-out", path,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"evac: ", "batch(es)", "health: exported"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// One document: coordinator fleet series plus sampler-fed SLO series.
	for _, want := range []string{"fleet_shard_page_frac", "collabvr_slo_sessions_ok"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("health export missing series %q", want)
		}
	}
}

func TestRunFleetRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"bad scorer":            {"-scorer", "nope"},
		"bad algo":              {"-algo", "nope"},
		"bad mode":              {"-mode", "nope"},
		"check without profile": {"-chaos-check"},
		"verify without chaos":  {"-verify-recovery"},
		"verify in live mode":   {"-verify-recovery", "-mode", "live"},
		"evac single shard":     {"-evac", "-shards", "1"},
	}
	for name, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("%s: expected an error for %v", name, args)
		}
	}
}
