package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// writeSpanFile exports a small two-sided trace set through the real
// sync exporter, so the test input is the exact on-disk format.
func writeSpanFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	exp := trace.NewExporter(trace.ExporterOptions{Writer: f, Sync: true})
	clock := int64(0)
	tr := trace.New(trace.Options{Exporter: exp, Clock: func() int64 { clock += 1e6; return clock }})
	for slot := uint32(0); slot < 5; slot++ {
		tid := trace.TileTraceID(1, 7, slot)
		d := tr.Start(tid, trace.StageDecide, trace.SideServer, 7, slot)
		d.SetAlgo("proposed")
		d.End()
		tx := tr.Start(tid, trace.StageSend, trace.SideServer, 7, slot)
		tx.SetBytes(4096)
		tx.End()
		disp := tr.Start(tid, trace.StageDisplay, trace.SideClient, 7, slot)
		disp.SetOutcome(trace.OutcomeDisplayed)
		disp.End()
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPrintsAnalysis(t *testing.T) {
	path := writeSpanFile(t)
	var out bytes.Buffer
	if err := run([]string{"-top", "2", path}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"span analysis", trace.StageDecide, trace.StageSend, trace.StageDisplay, "slowest"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunJSON(t *testing.T) {
	path := writeSpanFile(t)
	var out bytes.Buffer
	if err := run([]string{"-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\"stitched\"") && !strings.Contains(out.String(), "\"Stitched\"") {
		t.Errorf("JSON output missing stitched field:\n%s", out.String())
	}
}

func TestRunMergesMultipleFiles(t *testing.T) {
	a, b := writeSpanFile(t), writeSpanFile(t)
	var out bytes.Buffer
	if err := run([]string{a, b}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "span analysis") {
		t.Errorf("merged analysis missing:\n%s", out.String())
	}
}

// TestRunToleratesLiveTail reads a span file whose last line is torn (a
// live writer mid-append): the analysis must succeed on the complete spans
// and report the skipped line.
func TestRunToleratesLiveTail(t *testing.T) {
	path := writeSpanFile(t)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(t.TempDir(), "live.jsonl")
	if err := os.WriteFile(torn, full[:len(full)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{torn}, &out); err != nil {
		t.Fatalf("torn tail failed the run: %v", err)
	}
	if !strings.Contains(out.String(), "skipped 1 partial trailing line") {
		t.Errorf("output missing skipped-line note:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "span analysis") {
		t.Errorf("analysis missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	garbage := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(garbage, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{garbage}, &bytes.Buffer{}); err == nil {
		t.Error("malformed input should error")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}, &bytes.Buffer{}); err == nil {
		t.Error("empty input should error")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, &bytes.Buffer{}); err == nil {
		t.Error("missing file should error")
	}
	if err := run([]string{"-top", "x"}, &bytes.Buffer{}); err == nil {
		t.Error("bad flag should error")
	}
}
