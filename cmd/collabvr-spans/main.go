// Command collabvr-spans analyzes end-to-end request traces exported as
// JSONL by the tracer (collabvr-server -span-out, collabvr-loadgen
// -span-out, or collabvr-bench -spans). It prints per-stage latency
// quantiles (p50/p95/p99), critical-path attribution — which stage most
// often dominates a trace — and the slowest-trace exemplars.
//
// Usage:
//
//	collabvr-spans spans.jsonl
//	collabvr-spans -top 10 server.jsonl client.jsonl
//	collabvr-loadgen -span-out /dev/stdout ... | collabvr-spans -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "collabvr-spans:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("collabvr-spans", flag.ContinueOnError)
	var (
		topN   = fs.Int("top", 3, "slowest-trace exemplars to print")
		asJSON = fs.Bool("json", false, "emit the full analysis as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		paths = []string{"-"}
	}

	var spans []trace.SpanRecord
	skipped := 0
	for _, path := range paths {
		s, sk, err := readFile(path)
		if err != nil {
			return err
		}
		spans = append(spans, s...)
		skipped += sk
	}
	if len(spans) == 0 {
		return fmt.Errorf("no spans in input")
	}
	if skipped > 0 && !*asJSON {
		fmt.Fprintf(out, "# skipped %d partial trailing line(s) (live writer)\n", skipped)
	}

	a := trace.Analyze(spans, *topN)
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(a)
	}
	fmt.Fprint(out, a.Format())
	return nil
}

func readFile(path string) ([]trace.SpanRecord, int, error) {
	r := io.Reader(os.Stdin)
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		r = f
	}
	spans, skipped, err := trace.ReadSpansTolerant(r)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", path, err)
	}
	return spans, skipped, nil
}
